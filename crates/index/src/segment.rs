//! Immutable B+-tree segments: the `SFCSEG01` on-disk page format,
//! bulk-built leaf-first in one streaming pass.
//!
//! A [`SegmentTree`] is the durable, read-only half of the stored
//! backend: entries arrive once, already in curve-key order (a snapshot
//! iterator, a compaction merge), and are packed into fixed-size leaf
//! pages written sequentially through a [`PageStore`]. There are no
//! interior node pages — the per-leaf fence keys (each leaf's first key)
//! are small enough to keep in memory, so a lookup is one binary search
//! over the fence array plus at most one page read. This is the
//! bulk-build shape the classic B+-tree literature prescribes for sorted
//! input: leaves first, no splits, every page full.
//!
//! ## File layout (all pages `page_size` bytes, zero-padded)
//!
//! ```text
//! page 0              header: magic "SFCSEG01", page_size u32,
//!                     leaf_count u64, entry_count u64,
//!                     fence_page_count u64, crc32 of the above
//! pages 1..=L         leaf pages:  [crc32 u32][count u32]
//!                                  [key u64, len u32, value bytes]*count
//! pages L+1..=L+F     fence pages: [crc32 u32][count u32][key u64]*count
//! ```
//!
//! Publication reuses the snapshot discipline: the segment is built at a
//! temporary path, fsynced, then renamed into place
//! ([`PageStore::publish`]) — a crash mid-build leaves at most a stale
//! `.tmp` file, never a half-visible segment.
//!
//! Values go through [`WalCodec`], the workspace's one byte codec; every
//! page carries a crc32 so a torn or bit-flipped page is *detected* at
//! read time rather than decoded into garbage.

use crate::cache::LruBufferPool;
use crate::store::{FileStore, PageStore};
use crate::wal::{crc32, storage_err, WalCodec, WalCursor};
use onion_core::SfcError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"SFCSEG01";

/// Byte overhead of a leaf/fence page before its payload: crc32 + count.
const PAGE_HEADER: usize = 8;

/// Byte overhead of one leaf entry before its value bytes: key + length.
const ENTRY_HEADER: usize = 12;

/// Statistics of one segment scan, in the same vocabulary as
/// [`ScanStats`](crate::ScanStats) plus the measured read counter.
#[derive(Clone, Copy, Debug, Default)]
pub struct SegmentScanStats {
    /// Leaf pages decoded from the medium (leaf-cache misses).
    pub pages: u64,
    /// Leaf pages served by the resident leaf cache.
    pub cache_hits: u64,
    /// Pages physically read from the [`PageStore`] (equals `pages` for
    /// a segment scan; distinct so callers summing mixed backends keep
    /// the real/simulated split).
    pub real_reads: u64,
    /// Non-contiguous physical page fetches within this scan (the first
    /// fetch counts as one).
    pub real_seeks: u64,
}

/// One decoded leaf held by the resident cache.
type Leaf<V> = Arc<Vec<(u64, V)>>;

/// The leaf cache: an [`LruBufferPool`] deciding residency, plus the
/// decoded pages themselves. Evictions reported by the pool drop the
/// decoded copy, so memory tracks the configured page budget.
#[derive(Debug)]
struct LeafCache<V> {
    pool: LruBufferPool,
    resident: HashMap<u64, Leaf<V>>,
}

/// An immutable, file-resident B+-tree segment of `(u64, V)` entries in
/// ascending key order (duplicates allowed, stored oldest-first).
///
/// Reads are `&self` and thread-safe: the store serializes its own
/// descriptor, and the leaf cache sits behind a mutex locked only for
/// the O(1) residency bookkeeping plus (on a miss) one page read.
#[derive(Debug)]
pub struct SegmentTree<V, S: PageStore = FileStore> {
    store: S,
    /// First key of each leaf page, in order — the in-memory fence index.
    fences: Vec<u64>,
    entry_count: u64,
    cache: Mutex<LeafCache<V>>,
}

impl<V: WalCodec + Clone, S: PageStore> SegmentTree<V, S> {
    /// Bulk-builds a segment into `store` from entries **sorted ascending
    /// by key** (duplicates in oldest-to-newest order), one streaming
    /// pass, then fsyncs. The caller publishes the store's file to its
    /// final path afterwards ([`PageStore::publish`]).
    ///
    /// At most `pool_pages` decoded leaves are kept resident for reads.
    ///
    /// # Errors
    /// If the input is unsorted, an encoded entry exceeds the page
    /// capacity, or the store fails.
    pub fn build(
        store: S,
        pool_pages: usize,
        entries: impl IntoIterator<Item = (u64, V)>,
    ) -> Result<Self, SfcError> {
        let page_size = store.page_size();
        if page_size < PAGE_HEADER + ENTRY_HEADER + 4 {
            return Err(SfcError::Storage {
                context: format!("segment page size {page_size} too small"),
            });
        }
        let mut fences: Vec<u64> = Vec::new();
        let mut entry_count = 0u64;
        let mut page = vec![0u8; page_size];
        let mut fill = PAGE_HEADER; // bytes used in the current leaf
        let mut leaf_keys = 0u32;
        let mut first_key = 0u64;
        let mut last_key: Option<u64> = None;
        let mut scratch = Vec::new();
        let mut next_page = 1u64; // page 0 is the header

        let mut flush_leaf = |page: &mut Vec<u8>,
                              fill: &mut usize,
                              leaf_keys: &mut u32,
                              next_page: &mut u64,
                              first_key: u64|
         -> Result<(), SfcError> {
            page[4..8].copy_from_slice(&leaf_keys.to_le_bytes());
            let crc = crc32(&page[4..]);
            page[..4].copy_from_slice(&crc.to_le_bytes());
            store
                .write_page(*next_page, page)
                .map_err(|e| storage_err("writing segment leaf", e))?;
            fences.push(first_key);
            *next_page += 1;
            page.iter_mut().for_each(|b| *b = 0);
            *fill = PAGE_HEADER;
            *leaf_keys = 0;
            Ok(())
        };

        for (key, value) in entries {
            if let Some(prev) = last_key {
                if key < prev {
                    return Err(SfcError::Storage {
                        context: format!("segment build input not sorted: key {key} after {prev}"),
                    });
                }
            }
            last_key = Some(key);
            scratch.clear();
            value.encode(&mut scratch);
            let need = ENTRY_HEADER + scratch.len();
            if PAGE_HEADER + need > page_size {
                return Err(SfcError::Storage {
                    context: format!(
                        "segment entry ({need} bytes encoded) exceeds page capacity ({})",
                        page_size - PAGE_HEADER
                    ),
                });
            }
            if fill + need > page_size {
                flush_leaf(
                    &mut page,
                    &mut fill,
                    &mut leaf_keys,
                    &mut next_page,
                    first_key,
                )?;
            }
            if leaf_keys == 0 {
                first_key = key;
            }
            page[fill..fill + 8].copy_from_slice(&key.to_le_bytes());
            page[fill + 8..fill + 12].copy_from_slice(&(scratch.len() as u32).to_le_bytes());
            page[fill + 12..fill + need].copy_from_slice(&scratch);
            fill += need;
            leaf_keys += 1;
            entry_count += 1;
        }
        if leaf_keys > 0 {
            flush_leaf(
                &mut page,
                &mut fill,
                &mut leaf_keys,
                &mut next_page,
                first_key,
            )?;
        }
        let leaf_count = fences.len() as u64;

        // Fence pages: the in-memory index, persisted for reopen.
        let keys_per_page = (page_size - PAGE_HEADER) / 8;
        let mut fence_pages = 0u64;
        for chunk in fences.chunks(keys_per_page) {
            page.iter_mut().for_each(|b| *b = 0);
            page[4..8].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
            for (i, key) in chunk.iter().enumerate() {
                let at = PAGE_HEADER + i * 8;
                page[at..at + 8].copy_from_slice(&key.to_le_bytes());
            }
            let crc = crc32(&page[4..]);
            page[..4].copy_from_slice(&crc.to_le_bytes());
            store
                .write_page(next_page + fence_pages, &page)
                .map_err(|e| storage_err("writing segment fence page", e))?;
            fence_pages += 1;
        }

        // Header last: a segment whose header page is valid is complete.
        page.iter_mut().for_each(|b| *b = 0);
        page[..8].copy_from_slice(&SEGMENT_MAGIC);
        page[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
        page[12..20].copy_from_slice(&leaf_count.to_le_bytes());
        page[20..28].copy_from_slice(&entry_count.to_le_bytes());
        page[28..36].copy_from_slice(&fence_pages.to_le_bytes());
        let crc = crc32(&page[8..36]);
        page[36..40].copy_from_slice(&crc.to_le_bytes());
        store
            .write_page(0, &page)
            .map_err(|e| storage_err("writing segment header", e))?;
        store
            .sync()
            .map_err(|e| storage_err("syncing segment", e))?;

        Ok(SegmentTree {
            store,
            fences,
            entry_count,
            cache: Mutex::new(LeafCache {
                pool: LruBufferPool::new(pool_pages.max(1)),
                resident: HashMap::new(),
            }),
        })
    }

    /// Opens a previously built segment, validating the header and
    /// reloading the fence index from its pages.
    ///
    /// # Errors
    /// On I/O failure or a corrupt header/fence page.
    pub fn open(store: S, pool_pages: usize) -> Result<Self, SfcError> {
        let page_size = store.page_size();
        let corrupt = |what: &str| SfcError::Storage {
            context: format!("opening segment {}: {what}", store_name(&store)),
        };
        let mut page = vec![0u8; page_size];
        store
            .read_page(0, &mut page)
            .map_err(|e| storage_err("reading segment header", e))?;
        if page[..8] != SEGMENT_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let stored_ps = u32::from_le_bytes(page[8..12].try_into().expect("4 bytes")) as usize;
        if stored_ps != page_size {
            return Err(corrupt("page size mismatch"));
        }
        let crc = u32::from_le_bytes(page[36..40].try_into().expect("4 bytes"));
        if crc32(&page[8..36]) != crc {
            return Err(corrupt("header checksum mismatch"));
        }
        let leaf_count = u64::from_le_bytes(page[12..20].try_into().expect("8 bytes"));
        let entry_count = u64::from_le_bytes(page[20..28].try_into().expect("8 bytes"));
        let fence_pages = u64::from_le_bytes(page[28..36].try_into().expect("8 bytes"));

        let mut fences = Vec::with_capacity(leaf_count as usize);
        for fp in 0..fence_pages {
            store
                .read_page(1 + leaf_count + fp, &mut page)
                .map_err(|e| storage_err("reading segment fence page", e))?;
            let crc = u32::from_le_bytes(page[..4].try_into().expect("4 bytes"));
            if crc32(&page[4..]) != crc {
                return Err(corrupt("fence page checksum mismatch"));
            }
            let count = u32::from_le_bytes(page[4..8].try_into().expect("4 bytes")) as usize;
            for i in 0..count {
                let at = PAGE_HEADER + i * 8;
                fences.push(u64::from_le_bytes(
                    page[at..at + 8].try_into().expect("8 bytes"),
                ));
            }
        }
        if fences.len() as u64 != leaf_count {
            return Err(corrupt("fence count does not match leaf count"));
        }
        Ok(SegmentTree {
            store,
            fences,
            entry_count,
            cache: Mutex::new(LeafCache {
                pool: LruBufferPool::new(pool_pages.max(1)),
                resident: HashMap::new(),
            }),
        })
    }

    /// Number of entries in the segment.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// Whether the segment holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// The underlying page store (publication, measured counters).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Reads and decodes leaf `leaf` (0-based) straight from the store,
    /// bypassing the cache.
    fn read_leaf(&self, leaf: u64) -> Result<Leaf<V>, SfcError> {
        let page_size = self.store.page_size();
        let mut page = vec![0u8; page_size];
        self.store
            .read_page(1 + leaf, &mut page)
            .map_err(|e| storage_err("reading segment leaf", e))?;
        let crc = u32::from_le_bytes(page[..4].try_into().expect("4 bytes"));
        if crc32(&page[4..]) != crc {
            return Err(SfcError::Storage {
                context: format!("segment leaf page {leaf} checksum mismatch (torn or corrupt)"),
            });
        }
        let count = u32::from_le_bytes(page[4..8].try_into().expect("4 bytes")) as usize;
        let mut cur = WalCursor::new(&page[PAGE_HEADER..]);
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let decoded = (|| {
                let key = u64::decode(&mut cur)?;
                let len = u32::decode(&mut cur)? as usize;
                let bytes = cur.take(len)?;
                let value = V::decode(&mut WalCursor::new(bytes))?;
                Some((key, value))
            })();
            match decoded {
                Some(e) => entries.push(e),
                None => {
                    return Err(SfcError::Storage {
                        context: format!("segment leaf page {leaf} malformed entry"),
                    })
                }
            }
        }
        Ok(Arc::new(entries))
    }

    /// Fetches leaf `leaf` through the cache. Returns the decoded page
    /// and whether it was a cache hit.
    fn leaf(&self, leaf: u64) -> Result<(Leaf<V>, bool), SfcError> {
        {
            let mut cache = self.cache.lock().expect("leaf cache poisoned");
            let (hit, evicted) = cache.pool.access_evicting(leaf);
            if let Some(victim) = evicted {
                cache.resident.remove(&victim);
            }
            if hit {
                if let Some(found) = cache.resident.get(&leaf) {
                    return Ok((Arc::clone(found), true));
                }
                // Pool said resident but the decode was dropped (poisoned
                // insert race) — fall through to a fresh read.
            }
        }
        let decoded = self.read_leaf(leaf)?;
        let mut cache = self.cache.lock().expect("leaf cache poisoned");
        cache.resident.insert(leaf, Arc::clone(&decoded));
        Ok((decoded, false))
    }

    /// Index of the rightmost leaf whose first key is `<= key`, if any.
    fn leaf_for(&self, key: u64) -> Option<u64> {
        let idx = self.fences.partition_point(|&f| f <= key);
        idx.checked_sub(1).map(|i| i as u64)
    }

    /// Newest (last-stored) value under `key`.
    ///
    /// # Errors
    /// On I/O failure or a corrupt page.
    pub fn get(&self, key: u64) -> Result<Option<V>, SfcError> {
        let Some(leaf_no) = self.leaf_for(key) else {
            return Ok(None);
        };
        let (leaf, _) = self.leaf(leaf_no)?;
        let end = leaf.partition_point(|&(k, _)| k <= key);
        if end > 0 && leaf[end - 1].0 == key {
            Ok(Some(leaf[end - 1].1.clone()))
        } else {
            Ok(None)
        }
    }

    /// Number of stored copies of `key` (duplicates).
    ///
    /// # Errors
    /// On I/O failure or a corrupt page.
    pub fn count(&self, key: u64) -> Result<u32, SfcError> {
        let Some(first) = self.leaf_for_first(key) else {
            return Ok(0);
        };
        let mut total = 0u32;
        let mut leaf_no = first;
        loop {
            let (leaf, _) = self.leaf(leaf_no)?;
            let lo = leaf.partition_point(|&(k, _)| k < key);
            let hi = leaf.partition_point(|&(k, _)| k <= key);
            total += (hi - lo) as u32;
            // Duplicates may spill into the next leaf only if this leaf
            // ends exactly at `key`.
            if hi == leaf.len()
                && leaf_no + 1 < self.fences.len() as u64
                && self.fences[(leaf_no + 1) as usize] == key
            {
                leaf_no += 1;
                continue;
            }
            return Ok(total);
        }
    }

    /// `idx`-th stored copy of `key` (0 = oldest), if it exists.
    ///
    /// # Errors
    /// On I/O failure or a corrupt page.
    pub fn dup(&self, key: u64, idx: u32) -> Result<Option<V>, SfcError> {
        let Some(first) = self.leaf_for_first(key) else {
            return Ok(None);
        };
        let mut remaining = idx;
        let mut leaf_no = first;
        loop {
            let (leaf, _) = self.leaf(leaf_no)?;
            let lo = leaf.partition_point(|&(k, _)| k < key);
            let hi = leaf.partition_point(|&(k, _)| k <= key);
            let here = (hi - lo) as u32;
            if remaining < here {
                return Ok(Some(leaf[lo + remaining as usize].1.clone()));
            }
            remaining -= here;
            if hi == leaf.len()
                && leaf_no + 1 < self.fences.len() as u64
                && self.fences[(leaf_no + 1) as usize] == key
            {
                leaf_no += 1;
                continue;
            }
            return Ok(None);
        }
    }

    /// Leftmost leaf that can hold `key` (where its oldest copy lives).
    fn leaf_for_first(&self, key: u64) -> Option<u64> {
        if self.fences.is_empty() {
            return None;
        }
        // The first leaf whose fence is > key is past the key; its
        // predecessor may hold it. A fence == key means the *previous*
        // leaf could still end in older copies of key, so start at the
        // first leaf whose fence >= key minus one.
        let idx = self.fences.partition_point(|&f| f < key);
        Some(idx.saturating_sub(1) as u64)
    }

    /// Scans keys in `lo..=hi` ascending, calling
    /// `visit(key, value, dup_idx)` for each entry, where `dup_idx`
    /// counts that key's copies from the oldest (0-based). Returns the
    /// scan's page statistics.
    ///
    /// # Errors
    /// On I/O failure or a corrupt page.
    pub fn scan(
        &self,
        lo: u64,
        hi: u64,
        visit: &mut dyn FnMut(u64, &V, u32),
    ) -> Result<SegmentScanStats, SfcError> {
        let mut stats = SegmentScanStats::default();
        if lo > hi || self.fences.is_empty() {
            return Ok(stats);
        }
        let mut leaf_no = self.leaf_for_first(lo).unwrap_or(0);
        let mut cur_key = u64::MAX;
        let mut dup_idx = 0u32;
        let mut last_fetched: Option<u64> = None;
        while leaf_no < self.fences.len() as u64 {
            if self.fences[leaf_no as usize] > hi {
                break;
            }
            let (leaf, hit) = self.leaf(leaf_no)?;
            if hit {
                stats.cache_hits += 1;
            } else {
                stats.pages += 1;
                stats.real_reads += 1;
                if last_fetched != Some(leaf_no.wrapping_sub(1)) {
                    stats.real_seeks += 1;
                }
                last_fetched = Some(leaf_no);
            }
            let start = leaf.partition_point(|&(k, _)| k < lo);
            for &(k, ref v) in &leaf[start..] {
                if k > hi {
                    return Ok(stats);
                }
                if k == cur_key {
                    dup_idx += 1;
                } else {
                    cur_key = k;
                    dup_idx = 0;
                }
                visit(k, v, dup_idx);
            }
            leaf_no += 1;
        }
        Ok(stats)
    }

    /// Streams every entry in key order straight from the store,
    /// bypassing (and not warming) the leaf cache — the persistence
    /// path, so a snapshot never pollutes live cache statistics. The sink
    /// receives `(key, value, dup_idx)` with `dup_idx` counting each
    /// key's copies from the oldest.
    ///
    /// # Errors
    /// On I/O failure or a corrupt page.
    pub fn stream(&self, sink: &mut dyn FnMut(u64, &V, u32)) -> Result<(), SfcError> {
        let mut cur_key = u64::MAX;
        let mut dup_idx = 0u32;
        let mut first = true;
        for leaf_no in 0..self.fences.len() as u64 {
            let leaf = self.read_leaf(leaf_no)?;
            for &(k, ref v) in leaf.iter() {
                if !first && k == cur_key {
                    dup_idx += 1;
                } else {
                    cur_key = k;
                    dup_idx = 0;
                    first = false;
                }
                sink(k, v, dup_idx);
            }
        }
        Ok(())
    }
}

/// Best-effort display name for error contexts.
fn store_name<S: PageStore>(store: &S) -> String {
    store.path().display().to_string()
}
