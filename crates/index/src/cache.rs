//! An LRU buffer pool simulator.
//!
//! Disk seeks are the paper's headline cost, but real systems also cache
//! pages: a curve that clusters queries into few ranges touches fewer
//! distinct pages, so repeated workloads hit the buffer pool more often.
//! This simulator counts hits/misses for a stream of page accesses, letting
//! experiments compare curve layouts under a bounded cache.
//!
//! Every access is `O(1)`: recency is an intrusive doubly-linked list
//! threaded through a slot arena, with a hash map from page id to slot.
//! (The previous implementation rescanned the whole map with `min_by_key`
//! on each eviction, making every miss `O(capacity)` — ruinous now that the
//! paged storage backend consults the pool on each leaf touched.)

use std::collections::HashMap;

/// Sentinel slot index meaning "no neighbor" in the recency list.
const NIL: usize = usize::MAX;

/// One resident page: arena slot of the intrusive recency list.
#[derive(Clone, Copy, Debug)]
struct Slot {
    page: u64,
    /// Towards more recently used (NIL at the head).
    prev: usize,
    /// Towards less recently used (NIL at the tail).
    next: usize,
}

/// A fixed-capacity LRU cache over page identifiers.
#[derive(Debug)]
pub struct LruBufferPool {
    capacity: usize,
    /// page id -> arena slot.
    resident: HashMap<u64, usize>,
    /// Slot arena; at most `capacity` slots are ever allocated.
    slots: Vec<Slot>,
    /// Most recently used slot (NIL while empty).
    head: usize,
    /// Least recently used slot — the eviction victim (NIL while empty).
    tail: usize,
    hits: u64,
    misses: u64,
}

impl LruBufferPool {
    /// Maximum number of resident pages this pool was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Creates a pool holding at most `capacity` pages (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache needs at least one page");
        LruBufferPool {
            capacity,
            resident: HashMap::with_capacity(capacity + 1),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Unlinks `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let Slot { prev, next, .. } = self.slots[slot];
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Links `slot` at the head (most recently used).
    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slots[h].prev = slot,
        }
        self.head = slot;
    }

    /// Accesses a page; returns `true` on a cache hit. `O(1)`.
    pub fn access(&mut self, page: u64) -> bool {
        self.access_evicting(page).0
    }

    /// Accesses a page, additionally reporting which page (if any) was
    /// evicted to make room. `O(1)`. Callers that keep page *contents*
    /// resident alongside this pool (the segment leaf cache) use the
    /// victim to drop their copy, so memory tracks the pool's bound.
    pub fn access_evicting(&mut self, page: u64) -> (bool, Option<u64>) {
        if let Some(&slot) = self.resident.get(&page) {
            self.hits += 1;
            if self.head != slot {
                self.unlink(slot);
                self.link_front(slot);
            }
            return (true, None);
        }
        self.misses += 1;
        let mut evicted = None;
        let slot = if self.slots.len() < self.capacity {
            // Arena not full yet: allocate a fresh slot.
            self.slots.push(Slot {
                page,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Evict the least recently used page and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            self.resident.remove(&self.slots[victim].page);
            evicted = Some(self.slots[victim].page);
            self.slots[victim].page = page;
            victim
        };
        self.resident.insert(page, slot);
        self.link_front(slot);
        (false, evicted)
    }

    /// Accesses every page overlapped by the inclusive key range, given
    /// `page_size` keys per page.
    pub fn access_range(&mut self, lo: u64, hi: u64, page_size: u64) {
        debug_assert!(lo <= hi && page_size >= 1);
        for page in (lo / page_size)..=(hi / page_size) {
            self.access(page);
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (each miss is a simulated disk page read).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 for an untouched pool.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of pages currently resident.
    pub fn resident(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_accesses_miss_then_hit() {
        let mut pool = LruBufferPool::new(4);
        assert!(!pool.access(1));
        assert!(!pool.access(2));
        assert!(pool.access(1));
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 2);
        assert!((pool.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_respected_with_lru_eviction() {
        let mut pool = LruBufferPool::new(2);
        pool.access(1);
        pool.access(2);
        pool.access(1); // 1 is now most recent
        pool.access(3); // evicts 2
        assert_eq!(pool.resident(), 2);
        assert!(pool.access(1), "1 must still be resident");
        assert!(!pool.access(2), "2 was evicted");
    }

    #[test]
    fn range_access_touches_each_overlapped_page_once() {
        let mut pool = LruBufferPool::new(16);
        pool.access_range(0, 255, 64); // pages 0..=3
        assert_eq!(pool.misses(), 4);
        pool.access_range(100, 120, 64); // page 1 only — a hit
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn sequential_scan_thrashes_small_cache() {
        let mut pool = LruBufferPool::new(2);
        for round in 0..3 {
            for page in 0..10u64 {
                let hit = pool.access(page);
                assert!(!hit, "round {round} page {page} cannot hit an LRU of 2");
            }
        }
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.misses(), 30);
    }

    /// The old `O(capacity)`-per-miss implementation, kept as an oracle:
    /// the intrusive-list rewrite must preserve hit/miss semantics exactly.
    struct NaiveLru {
        capacity: usize,
        last_use: std::collections::HashMap<u64, u64>,
        tick: u64,
    }

    impl NaiveLru {
        fn access(&mut self, page: u64) -> bool {
            self.tick += 1;
            let hit = self.last_use.contains_key(&page);
            self.last_use.insert(page, self.tick);
            if !hit && self.last_use.len() > self.capacity {
                let (&victim, _) = self.last_use.iter().min_by_key(|&(_, &t)| t).unwrap();
                self.last_use.remove(&victim);
            }
            hit
        }
    }

    #[test]
    fn matches_naive_reference_on_adversarial_streams() {
        for capacity in [1usize, 2, 3, 7, 16] {
            let mut fast = LruBufferPool::new(capacity);
            let mut naive = NaiveLru {
                capacity,
                last_use: std::collections::HashMap::new(),
                tick: 0,
            };
            // Deterministic pseudo-random page stream over a small id space
            // (plenty of re-touches and evictions at every capacity).
            let mut state = 0x2545F4914F6CDD1Du64;
            for step in 0..4000u32 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let page = state % 24;
                assert_eq!(
                    fast.access(page),
                    naive.access(page),
                    "capacity {capacity}, step {step}, page {page}"
                );
            }
            assert_eq!(fast.resident(), naive.last_use.len(), "capacity {capacity}");
            assert!(fast.resident() <= capacity);
        }
    }

    #[test]
    fn clustered_ranges_cache_better_than_scattered() {
        // Two layouts of the same 64 "cells": 4 contiguous ranges vs 32
        // scattered fragments; replay the workload twice with a small pool.
        let page = 8u64;
        let mut clustered = LruBufferPool::new(8);
        let mut scattered = LruBufferPool::new(8);
        for _ in 0..2 {
            for r in 0..4u64 {
                clustered.access_range(r * 16, r * 16 + 15, page);
            }
            for f in 0..32u64 {
                scattered.access_range(f * 40, f * 40 + 1, page);
            }
        }
        assert!(
            clustered.hit_ratio() > scattered.hit_ratio(),
            "clustered {:.2} vs scattered {:.2}",
            clustered.hit_ratio(),
            scattered.hit_ratio()
        );
    }
}
