//! The disk-resident storage backend: an immutable [`SegmentTree`] base
//! plus an in-memory write overlay, behind the same [`Backend`] trait the
//! simulated backends implement.
//!
//! A [`FileBackend`] is a miniature log-structured tree of exactly two
//! levels:
//!
//! * **base** — a bulk-built segment file on a [`PageStore`], holding the
//!   table's contents as of the last restore or compaction, shared
//!   (`Arc`) across MVCC forks;
//! * **overlay** — a small in-memory [`BPlusTree`] absorbing every write
//!   since, copy-on-write forked exactly like the in-memory backends.
//!
//! Deletes and in-place updates of base-resident entries never touch the
//! segment file (it is immutable): a per-key *edit record* narrows the
//! window of the base's duplicate run that is still live
//! (`dead_front..base_n - promoted_back`), and updates *promote* the
//! newest base copy into the overlay before mutating it. Reads and scans
//! merge the two levels, preserving the trait's duplicate semantics:
//! newest copy wins point reads, oldest copy is removed first, scans
//! visit a key's copies oldest-to-newest.
//!
//! [`Backend::restore`] and [`Backend::compact`] rebuild the base: a new
//! **generation** segment file is bulk-built at a temporary path, synced,
//! renamed into place ([`PageStore::publish`] — the `SFCSNP01` snapshot
//! discipline), and the superseded generation's file is unlinked. Forks
//! pinned by MVCC retention keep reading the old generation through its
//! still-open descriptor; nothing is re-encoded in place.
//!
//! Durability note: segment files are a *materialization*, not the source
//! of truth — the durable engine rebuilds them from snapshot + WAL on
//! every open. A torn segment left by a crash is therefore overwritten,
//! never trusted, which is what keeps the recovery contract (state equals
//! a prefix of flush-acknowledged epochs) independent of segment fate.

use crate::backend::{Backend, ScanStats};
use crate::btree::{BPlusTree, EntryGuard, DEFAULT_NODE_CAPACITY};
use crate::segment::SegmentTree;
use crate::store::{FileStore, PageStore};
use crate::wal::{storage_err, WalCodec};
use onion_core::SfcError;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sizing knobs of a [`FileBackend`]'s segment files and leaf cache.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Bytes per segment page.
    pub page_size: usize,
    /// Decoded leaf pages kept resident per backend (the buffer pool
    /// bound); datasets larger than this are genuinely re-read from disk.
    pub pool_pages: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            page_size: 4096,
            pool_pages: 64,
        }
    }
}

/// Constructor for page stores at a given path — the injection seam test
/// harnesses use to interpose fault-injecting stores.
pub type StoreFactory<S> = Arc<dyn Fn(&Path, usize) -> std::io::Result<S> + Send + Sync>;

/// State shared by every fork of one logical backend: where its segment
/// generations live and how to create their stores.
struct StoredShared<S> {
    dir: PathBuf,
    stem: String,
    cfg: StoreConfig,
    /// Monotonic generation counter, shared across forks so concurrent
    /// rebuilds (retained versions compacting independently) never
    /// collide on a filename.
    generation: AtomicU64,
    factory: StoreFactory<S>,
}

/// Per-key narrowing of the base segment's duplicate run. The base holds
/// `base_n` copies of the key (oldest first); only indices in
/// `dead_front..base_n - promoted_back` are still live.
#[derive(Clone, Copy, Debug, Default)]
struct BaseEdit {
    dead_front: u32,
    promoted_back: u32,
    base_n: u32,
}

impl BaseEdit {
    fn live(&self) -> (u32, u32) {
        (self.dead_front, self.base_n - self.promoted_back)
    }
}

/// The file-backed [`Backend`]: immutable segment base + in-memory write
/// overlay. See the module docs for the merge semantics.
pub struct FileBackend<V, S: PageStore = FileStore> {
    base: Arc<SegmentTree<V, S>>,
    overlay: BPlusTree<V>,
    /// Keys whose base duplicate-run has been narrowed by removes or
    /// promotions. Absent key = whole run live.
    edits: HashMap<u64, BaseEdit>,
    /// Live entries in the base (total minus removed minus promoted).
    base_live: u64,
    shared: Arc<StoredShared<S>>,
}

impl<V: WalCodec + Clone> FileBackend<V, FileStore> {
    /// Bulk-builds a backend over real files: entries (sorted ascending
    /// by key) are packed into generation-0 of `dir/stem.g<N>.seg`.
    ///
    /// # Errors
    /// On I/O failure or unsorted input.
    pub fn create(
        dir: &Path,
        stem: &str,
        cfg: StoreConfig,
        entries: Vec<(u64, V)>,
    ) -> Result<Self, SfcError> {
        let page_size = cfg.page_size;
        Self::create_with(
            dir,
            stem,
            cfg,
            Arc::new(move |path: &Path, _ps: usize| FileStore::create(path, page_size)),
            entries,
        )
    }
}

impl<V: WalCodec + Clone, S: PageStore> FileBackend<V, S> {
    /// [`Self::create`] with an explicit store factory — the hook fault
    /// injection and alternative media ride in through.
    ///
    /// # Errors
    /// On I/O failure or unsorted input.
    pub fn create_with(
        dir: &Path,
        stem: &str,
        cfg: StoreConfig,
        factory: StoreFactory<S>,
        entries: Vec<(u64, V)>,
    ) -> Result<Self, SfcError> {
        std::fs::create_dir_all(dir).map_err(|e| storage_err("creating segment directory", e))?;
        let shared = Arc::new(StoredShared {
            dir: dir.to_path_buf(),
            stem: stem.to_string(),
            cfg,
            generation: AtomicU64::new(0),
            factory,
        });
        let count = entries.len() as u64;
        let base = build_generation(&shared, entries)?;
        Ok(FileBackend {
            base,
            overlay: BPlusTree::new(DEFAULT_NODE_CAPACITY),
            edits: HashMap::new(),
            base_live: count,
            shared,
        })
    }

    /// The base segment (measured store counters, size inspection).
    pub fn segment(&self) -> &SegmentTree<V, S> {
        &self.base
    }

    /// Entries absorbed by the in-memory overlay since the last
    /// restore/compaction (0 right after either).
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// The live window of `key`'s base duplicate run, read-only (point
    /// reads must not allocate edit records).
    fn live_window(&self, key: u64) -> (u32, u32) {
        match self.edits.get(&key) {
            Some(e) => e.live(),
            None => {
                let n = self
                    .base
                    .count(key)
                    .unwrap_or_else(|e| panic!("segment read failed: {e}"));
                (0, n)
            }
        }
    }

    /// The edit record for `key`, creating it (one segment `count` read)
    /// on first touch.
    fn edit_mut(&mut self, key: u64) -> &mut BaseEdit {
        if !self.edits.contains_key(&key) {
            let n = self
                .base
                .count(key)
                .unwrap_or_else(|e| panic!("segment read failed: {e}"));
            self.edits.insert(
                key,
                BaseEdit {
                    base_n: n,
                    ..BaseEdit::default()
                },
            );
        }
        self.edits.get_mut(&key).expect("just inserted")
    }

    /// Whether the `dup_idx`-th base copy of `key` is still live.
    fn base_copy_live(&self, key: u64, dup_idx: u32) -> bool {
        match self.edits.get(&key) {
            Some(e) => {
                let (lo, hi) = e.live();
                dup_idx >= lo && dup_idx < hi
            }
            None => true,
        }
    }

    /// Merges base and overlay over `lo..=hi` in key order — base copies
    /// of a key (oldest first) before overlay copies, dead/promoted base
    /// copies skipped. Returns combined page statistics.
    fn merged_scan(
        &self,
        lo: u64,
        hi: u64,
        visit: &mut dyn FnMut(u64, &V),
    ) -> Result<ScanStats, SfcError> {
        let mut it = self.overlay.range(lo, hi);
        let mut pending = it.next();
        let seg = self.base.scan(lo, hi, &mut |k, v, dup| {
            while let Some((ok, ov)) = pending {
                if ok < k {
                    visit(ok, ov);
                    pending = it.next();
                } else {
                    break;
                }
            }
            if self.base_copy_live(k, dup) {
                visit(k, v);
            }
        })?;
        while let Some((ok, ov)) = pending {
            visit(ok, ov);
            pending = it.next();
        }
        Ok(ScanStats {
            pages: seg.pages + it.pages(),
            cache_hits: seg.cache_hits,
            real_reads: seg.real_reads,
            real_seeks: seg.real_seeks,
        })
    }

    /// Streams the merged live contents in persist order, bypassing the
    /// leaf cache (snapshots must not pollute live cache statistics).
    fn merged_stream(&self, sink: &mut dyn FnMut(u64, &V)) -> Result<(), SfcError> {
        let mut it = self.overlay.range(0, u64::MAX);
        let mut pending = it.next();
        self.base.stream(&mut |k, v, dup| {
            while let Some((ok, ov)) = pending {
                if ok < k {
                    sink(ok, ov);
                    pending = it.next();
                } else {
                    break;
                }
            }
            if self.base_copy_live(k, dup) {
                sink(k, v);
            }
        })?;
        while let Some((ok, ov)) = pending {
            sink(ok, ov);
            pending = it.next();
        }
        Ok(())
    }

    /// Rebuilds the base from `entries` as a fresh generation and resets
    /// the overlay/edits. The superseded generation's file is unlinked;
    /// forks still holding it read on through their open descriptor.
    fn rebuild(&mut self, entries: Vec<(u64, V)>) -> Result<(), SfcError> {
        let count = entries.len() as u64;
        let new_base = build_generation(&self.shared, entries)?;
        let old = self.base.store().path();
        self.base = new_base;
        self.overlay = BPlusTree::new(DEFAULT_NODE_CAPACITY);
        self.edits.clear();
        self.base_live = count;
        // Best-effort: other forks keep their descriptor; a reopened
        // engine rebuilds from snapshot + WAL regardless.
        let _ = std::fs::remove_file(old);
        Ok(())
    }
}

/// Bulk-builds the next generation segment: temp path, streaming build,
/// fsync, rename into place.
fn build_generation<V: WalCodec + Clone, S: PageStore>(
    shared: &Arc<StoredShared<S>>,
    entries: Vec<(u64, V)>,
) -> Result<Arc<SegmentTree<V, S>>, SfcError> {
    let gen = shared.generation.fetch_add(1, Ordering::SeqCst);
    let final_path = shared.dir.join(format!("{}.g{gen}.seg", shared.stem));
    let tmp_path = shared.dir.join(format!("{}.g{gen}.seg.tmp", shared.stem));
    let store = (shared.factory)(&tmp_path, shared.cfg.page_size)
        .map_err(|e| storage_err("creating segment store", e))?;
    let seg = SegmentTree::build(store, shared.cfg.pool_pages, entries)?;
    seg.store()
        .publish(&final_path)
        .map_err(|e| storage_err("publishing segment", e))?;
    Ok(Arc::new(seg))
}

impl<V, S: PageStore> std::fmt::Debug for FileBackend<V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("base_live", &self.base_live)
            .field("overlay_len", &self.overlay.len())
            .field("edited_keys", &self.edits.len())
            .finish()
    }
}

impl<V: WalCodec + Clone, S: PageStore> Backend<V> for FileBackend<V, S> {
    fn len(&self) -> usize {
        self.base_live as usize + self.overlay.len()
    }

    fn fork(&self) -> Self {
        FileBackend {
            base: Arc::clone(&self.base),
            overlay: self.overlay.clone(),
            edits: self.edits.clone(),
            base_live: self.base_live,
            shared: Arc::clone(&self.shared),
        }
    }

    fn get_pinned(&self, key: u64) -> Result<Option<EntryGuard<V>>, SfcError> {
        // Overlay copies are always newer than base copies.
        if let Some(guard) = self.overlay.get_pinned(key) {
            return Ok(Some(guard));
        }
        let (lo, hi) = self.live_window(key);
        if lo >= hi {
            return Ok(None);
        }
        Ok(self.base.dup(key, hi - 1)?.map(EntryGuard::owned))
    }

    fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if self.overlay.get(key).is_none() {
            // Newest copy (if any) lives in the base: promote it into the
            // overlay so the caller can mutate it. The promoted copy stays
            // *newer* than the remaining base copies and *older* than any
            // overlay insert that follows — exactly its logical age.
            let (lo, hi) = self.live_window(key);
            if lo >= hi {
                return None;
            }
            let v = self
                .base
                .dup(key, hi - 1)
                .unwrap_or_else(|e| panic!("segment read failed: {e}"))?;
            let edit = self.edit_mut(key);
            edit.promoted_back += 1;
            self.base_live -= 1;
            self.overlay.insert(key, v);
        }
        self.overlay.get_mut(key)
    }

    fn insert(&mut self, key: u64, value: V) {
        self.overlay.insert(key, value);
    }

    fn remove(&mut self, key: u64) -> Option<V> {
        // Oldest copy first: base copies precede every overlay copy.
        let (lo, hi) = self.live_window(key);
        if lo < hi {
            let v = self
                .base
                .dup(key, lo)
                .unwrap_or_else(|e| panic!("segment read failed: {e}"))?;
            self.edit_mut(key).dead_front += 1;
            self.base_live -= 1;
            return Some(v);
        }
        self.overlay.remove(key)
    }

    fn scan(
        &self,
        lo: u64,
        hi: u64,
        visit: &mut dyn FnMut(u64, &V),
    ) -> Result<ScanStats, SfcError> {
        self.merged_scan(lo, hi, visit)
    }

    /// Streams base + overlay merged, bypassing the leaf cache — the
    /// segment *is* the persisted form, so nothing is re-encoded and the
    /// cache the live statistics measure stays untouched.
    fn persist(&self, sink: &mut dyn FnMut(u64, &V)) -> Result<(), SfcError> {
        self.merged_stream(sink)
    }

    fn restore(&mut self, entries: Vec<(u64, V)>) -> Result<(), SfcError> {
        self.rebuild(entries)
    }

    /// Merges the overlay and edits into a fresh bulk-built segment
    /// generation (no-op while the backend is unchanged since the last
    /// rebuild).
    fn compact(&mut self) -> Result<(), SfcError> {
        if self.overlay.is_empty() && self.edits.is_empty() {
            return Ok(());
        }
        let mut merged = Vec::with_capacity(self.len());
        self.merged_stream(&mut |k, v| merged.push((k, v.clone())))?;
        self.rebuild(merged)
    }
}
