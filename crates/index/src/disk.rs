//! A simulated disk with explicit seek accounting.
//!
//! The paper's motivation (§I): "the clustering number measures the number
//! of disk seeks that need to be performed in the retrieval. Since a disk
//! seek is an expensive operation, a smaller clustering number means better
//! performance." This module makes that cost model concrete: a range query
//! over SFC-ordered data costs one seek per cluster plus sequential page
//! transfers.

/// Cost model of a spinning disk (or any medium with a random-access
/// penalty). Times are in microseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskModel {
    /// Entries per page.
    pub page_size: usize,
    /// Cost of repositioning to a non-adjacent page (seek + rotational
    /// latency).
    pub seek_us: f64,
    /// Cost of sequentially transferring one page.
    pub transfer_us: f64,
}

impl DiskModel {
    /// A conventional HDD-flavored model: 8 ms seek, 0.1 ms per 4 KiB page
    /// (≈ 40 MB/s effective sequential rate), 256 entries per page.
    pub fn hdd() -> Self {
        DiskModel {
            page_size: 256,
            seek_us: 8_000.0,
            transfer_us: 100.0,
        }
    }

    /// An SSD-flavored model: cheap but non-zero random access.
    pub fn ssd() -> Self {
        DiskModel {
            page_size: 256,
            seek_us: 80.0,
            transfer_us: 25.0,
        }
    }
}

/// Accumulated I/O statistics of queries: the simulated counters (seeks,
/// pages priced by a [`DiskModel`]) plus, for queries served by a real
/// file-backed store, the *measured* counterparts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IoStats {
    /// Number of seeks performed (one per contiguous key range scanned).
    pub seeks: u64,
    /// Number of pages transferred from the medium (buffer-pool misses, for
    /// backends with a pool; every touched page otherwise).
    pub pages: u64,
    /// Number of entries returned.
    pub entries: u64,
    /// Pages served from the buffer pool instead of the medium (always zero
    /// for pool-less backends).
    pub cache_hits: u64,
    /// Pages physically read from a real page store — zero for simulated
    /// backends, measured for [`FileBackend`](crate::FileBackend).
    pub real_reads: u64,
    /// Non-contiguous physical fetches actually issued — zero for
    /// simulated backends.
    pub real_seeks: u64,
}

impl IoStats {
    /// Total simulated time under a disk model. Buffer-pool hits are free:
    /// only seeks and transferred pages cost time.
    pub fn time_us(&self, model: &DiskModel) -> f64 {
        self.seeks as f64 * model.seek_us + self.pages as f64 * model.transfer_us
    }

    /// Merges another stats record into this one.
    pub fn absorb(&mut self, other: IoStats) {
        self.seeks += other.seeks;
        self.pages += other.pages;
        self.entries += other.entries;
        self.cache_hits += other.cache_hits;
        self.real_reads += other.real_reads;
        self.real_seeks += other.real_seeks;
    }
}

/// A simulated disk holding entries sorted by key, packed into fixed-size
/// pages. Range scans touch `ceil(span / page_size)`-ish pages and cost one
/// seek each.
#[derive(Debug)]
pub struct SimulatedDisk<V> {
    /// Sorted (key, value) entries.
    entries: Vec<(u64, V)>,
    model: DiskModel,
}

impl<V> SimulatedDisk<V> {
    /// Builds a disk image from entries sorted ascending by key.
    ///
    /// # Panics
    /// If the input is not sorted.
    pub fn new(entries: Vec<(u64, V)>, model: DiskModel) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "disk image requires sorted input"
        );
        SimulatedDisk { entries, model }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the disk holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The disk model in force.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Scans one inclusive key range, returning the touched entries' slice
    /// bounds and the I/O cost: 1 seek + the pages overlapped by the range.
    pub fn scan_range(&self, lo: u64, hi: u64) -> (std::ops::Range<usize>, IoStats) {
        let start = self.entries.partition_point(|e| e.0 < lo);
        let end = self.entries.partition_point(|e| e.0 <= hi);
        if start == end {
            // Nothing stored in the range: still one seek to discover that
            // (the index descent lands on a page).
            return (
                start..end,
                IoStats {
                    seeks: 1,
                    pages: 1,
                    ..IoStats::default()
                },
            );
        }
        let first_page = start / self.model.page_size;
        let last_page = (end - 1) / self.model.page_size;
        (
            start..end,
            IoStats {
                seeks: 1,
                pages: (last_page - first_page + 1) as u64,
                entries: (end - start) as u64,
                ..IoStats::default()
            },
        )
    }

    /// Runs a multi-range query (e.g. the cluster decomposition of a
    /// rectangle) and returns combined stats.
    pub fn scan_ranges(&self, ranges: &[(u64, u64)]) -> IoStats {
        let mut total = IoStats::default();
        for &(lo, hi) in ranges {
            let (_, s) = self.scan_range(lo, hi);
            total.absorb(s);
        }
        total
    }

    /// Access to an entry by position (test helper).
    pub fn entry(&self, pos: usize) -> &(u64, V) {
        &self.entries[pos]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimulatedDisk<u32> {
        let entries: Vec<(u64, u32)> = (0..1000u64).map(|k| (k * 2, k as u32)).collect();
        SimulatedDisk::new(
            entries,
            DiskModel {
                page_size: 100,
                seek_us: 1000.0,
                transfer_us: 10.0,
            },
        )
    }

    #[test]
    fn single_range_costs_one_seek() {
        let d = disk();
        let (r, s) = d.scan_range(0, 198); // keys 0,2,..,198 → 100 entries
        assert_eq!(r, 0..100);
        assert_eq!(s.seeks, 1);
        assert_eq!(s.pages, 1);
        assert_eq!(s.entries, 100);
    }

    #[test]
    fn range_spanning_pages_transfers_more() {
        let d = disk();
        let (_, s) = d.scan_range(0, 398); // 200 entries → 2 pages
        assert_eq!(s.pages, 2);
        assert_eq!(s.seeks, 1);
    }

    #[test]
    fn multi_range_query_sums_seeks() {
        let d = disk();
        let stats = d.scan_ranges(&[(0, 18), (500, 518), (1500, 1518)]);
        assert_eq!(stats.seeks, 3);
        assert_eq!(stats.entries, 30);
    }

    #[test]
    fn empty_range_still_costs_a_probe() {
        let d = disk();
        let (_, s) = d.scan_range(1, 1); // odd keys don't exist
        assert_eq!(s.entries, 0);
        assert_eq!(s.seeks, 1);
    }

    #[test]
    fn time_reflects_model() {
        let stats = IoStats {
            seeks: 2,
            pages: 5,
            ..IoStats::default()
        };
        let m = DiskModel {
            page_size: 1,
            seek_us: 100.0,
            transfer_us: 1.0,
        };
        assert_eq!(stats.time_us(&m), 205.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted_input() {
        let _ = SimulatedDisk::new(vec![(5u64, ()), (1, ())], DiskModel::hdd());
    }
}
