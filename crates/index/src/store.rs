//! Real page-granular storage: the [`PageStore`] trait and its
//! file-backed implementation, [`FileStore`].
//!
//! Everything below the `Backend` trait so far has *simulated* its I/O —
//! [`SimulatedDisk`](crate::SimulatedDisk) and
//! [`PagedBackend`](crate::PagedBackend) count pages and price them with a
//! [`DiskModel`](crate::DiskModel), but no byte ever leaves RAM except
//! through the WAL and snapshot files. `PageStore` is the missing bottom
//! layer: explicit read/write/sync of fixed-size pages against a real
//! medium, with **measured** counters (`reads`, `writes`, `seeks`,
//! `syncs`) instead of modeled ones. The
//! [`SegmentTree`](crate::SegmentTree) persists its leaves through this
//! trait, and [`FileBackend`](crate::FileBackend) stacks the whole table
//! on top — which is what lets the planner's cost model grow a
//! measured-latency arm next to the simulated one.
//!
//! The trait is deliberately tiny (five I/O methods plus introspection)
//! so that test harnesses can interpose: `sfc-workloads`' `FaultStore`
//! wraps any `PageStore` and injects torn pages, short reads, full-disk
//! writes, and failed fsyncs at scheduled operation counts.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Measured I/O counters of a [`PageStore`] — real operations issued to
/// the medium, not modeled costs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Pages read from the medium.
    pub reads: u64,
    /// Pages written to the medium.
    pub writes: u64,
    /// Non-sequential head movements: an access whose offset did not
    /// immediately follow the previous access's end.
    pub seeks: u64,
    /// Durability barriers (`fsync`) issued.
    pub syncs: u64,
}

/// Page-granular storage with explicit read/write/sync — the pluggable
/// KV-store seam under [`SegmentTree`](crate::SegmentTree) and
/// [`FileBackend`](crate::FileBackend).
///
/// All methods take `&self`: implementations serialize access internally
/// (a file store holds its descriptor behind a mutex), so a store can be
/// shared by concurrent readers of an immutable segment.
///
/// Implementations must give each page `page_size` bytes at offset
/// `page * page_size`, persist `write_page` data no later than the next
/// successful [`Self::sync`], and keep serving reads after
/// [`Self::publish`] renames the backing file (the descriptor survives
/// the rename).
pub trait PageStore: Send + Sync {
    /// Fixed page size in bytes. Constant for the store's lifetime.
    fn page_size(&self) -> usize;

    /// Number of pages currently stored (highest written page + 1).
    fn page_count(&self) -> u64;

    /// Reads page `page` into `buf` (whose length must be
    /// [`Self::page_size`]). Reading a page that was never written is an
    /// error.
    ///
    /// # Errors
    /// On I/O failure or out-of-bounds page.
    fn read_page(&self, page: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Writes `buf` (length [`Self::page_size`]) as page `page`,
    /// extending the store if needed.
    ///
    /// # Errors
    /// On I/O failure.
    fn write_page(&self, page: u64, buf: &[u8]) -> io::Result<()>;

    /// Durability barrier: all previously written pages survive a crash
    /// once this returns.
    ///
    /// # Errors
    /// On fsync failure.
    fn sync(&self) -> io::Result<()>;

    /// Current path of the backing file.
    fn path(&self) -> PathBuf;

    /// Atomically renames the backing file to `to` (the
    /// temp-file-then-rename publication step) and fsyncs the parent
    /// directory on a best-effort basis. The open descriptor keeps
    /// serving reads.
    ///
    /// # Errors
    /// On rename failure.
    fn publish(&self, to: &Path) -> io::Result<()>;

    /// Lifetime I/O counters.
    fn stats(&self) -> StoreStats;
}

/// File state behind the lock: the descriptor plus the byte offset the
/// head is at, so sequential accesses are detected (and priced as zero
/// seeks) without asking the OS.
#[derive(Debug)]
struct FileInner {
    file: File,
    /// Where the head sits after the last read/write; `u64::MAX` = unknown.
    pos: u64,
    /// Path of the backing file (updated by [`PageStore::publish`]).
    path: PathBuf,
}

/// A [`PageStore`] over one ordinary file: explicit `seek`/`read`/`write`
/// page I/O with measured counters, no mmap, no unsafe.
///
/// The descriptor sits behind a mutex; counters are atomics so
/// [`PageStore::stats`] never blocks a reader.
#[derive(Debug)]
pub struct FileStore {
    inner: Mutex<FileInner>,
    page_size: usize,
    pages: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    seeks: AtomicU64,
    syncs: AtomicU64,
}

impl FileStore {
    /// Creates (or truncates) the file at `path` as an empty store of
    /// `page_size`-byte pages.
    ///
    /// # Errors
    /// On I/O failure.
    ///
    /// # Panics
    /// If `page_size` is zero.
    pub fn create(path: &Path, page_size: usize) -> io::Result<Self> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore::from_file(file, path.to_path_buf(), page_size, 0))
    }

    /// Opens an existing store; the page count is derived from the file
    /// length (a trailing partial page is treated as absent — the torn
    /// tail of an interrupted append).
    ///
    /// # Errors
    /// On I/O failure (including a missing file).
    ///
    /// # Panics
    /// If `page_size` is zero.
    pub fn open(path: &Path, page_size: usize) -> io::Result<Self> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let pages = len / page_size as u64;
        Ok(FileStore::from_file(
            file,
            path.to_path_buf(),
            page_size,
            pages,
        ))
    }

    fn from_file(file: File, path: PathBuf, page_size: usize, pages: u64) -> Self {
        FileStore {
            inner: Mutex::new(FileInner { file, pos: 0, path }),
            page_size,
            pages: AtomicU64::new(pages),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            seeks: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
        }
    }

    /// Positions the descriptor at `off`, counting a seek only when the
    /// head is not already there.
    fn position(&self, inner: &mut FileInner, off: u64) -> io::Result<()> {
        if inner.pos != off {
            inner.file.seek(SeekFrom::Start(off))?;
            self.seeks.fetch_add(1, Ordering::Relaxed);
            inner.pos = off;
        }
        Ok(())
    }
}

impl PageStore for FileStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u64 {
        self.pages.load(Ordering::Relaxed)
    }

    fn read_page(&self, page: u64, buf: &mut [u8]) -> io::Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        if page >= self.page_count() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("page {page} beyond store ({} pages)", self.page_count()),
            ));
        }
        let off = page * self.page_size as u64;
        let mut inner = self.inner.lock().expect("file store poisoned");
        self.position(&mut inner, off)?;
        match inner.file.read_exact(buf) {
            Ok(()) => {
                inner.pos = off + self.page_size as u64;
                self.reads.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                // The head is somewhere mid-page now; forget it.
                inner.pos = u64::MAX;
                Err(e)
            }
        }
    }

    fn write_page(&self, page: u64, buf: &[u8]) -> io::Result<()> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        let off = page * self.page_size as u64;
        let mut inner = self.inner.lock().expect("file store poisoned");
        self.position(&mut inner, off)?;
        match inner.file.write_all(buf) {
            Ok(()) => {
                inner.pos = off + self.page_size as u64;
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.pages.fetch_max(page + 1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                inner.pos = u64::MAX;
                Err(e)
            }
        }
    }

    fn sync(&self) -> io::Result<()> {
        let inner = self.inner.lock().expect("file store poisoned");
        inner.file.sync_all()?;
        self.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn path(&self) -> PathBuf {
        self.inner.lock().expect("file store poisoned").path.clone()
    }

    fn publish(&self, to: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("file store poisoned");
        std::fs::rename(&inner.path, to)?;
        inner.path = to.to_path_buf();
        // Make the rename itself durable where the platform allows it.
        if let Some(dir) = to.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sfc-store-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn pages_round_trip_and_counters_measure() {
        let path = tmp("roundtrip.pages");
        let s = FileStore::create(&path, 64).unwrap();
        assert_eq!(s.page_count(), 0);
        let a = [1u8; 64];
        let b = [2u8; 64];
        s.write_page(0, &a).unwrap();
        s.write_page(1, &b).unwrap();
        s.write_page(4, &a).unwrap(); // gap: extends the file, costs a seek
        s.sync().unwrap();
        assert_eq!(s.page_count(), 5);

        let mut buf = [0u8; 64];
        s.read_page(1, &mut buf).unwrap();
        assert_eq!(buf, b);
        s.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, a);

        let stats = s.stats();
        assert_eq!(stats.writes, 3);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.syncs, 1);
        // write 0 (sequential from start), write 1 (sequential), write 4
        // (seek), read 1 (seek back), read 0 (seek back).
        assert_eq!(stats.seeks, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_sees_written_pages_and_drops_torn_tail() {
        let path = tmp("reopen.pages");
        {
            let s = FileStore::create(&path, 32).unwrap();
            s.write_page(0, &[7u8; 32]).unwrap();
            s.write_page(1, &[8u8; 32]).unwrap();
            s.sync().unwrap();
        }
        // Simulate a torn append: half a page of garbage at the tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9u8; 16]).unwrap();
        }
        let s = FileStore::open(&path, 32).unwrap();
        assert_eq!(s.page_count(), 2, "partial trailing page is not counted");
        let mut buf = [0u8; 32];
        s.read_page(1, &mut buf).unwrap();
        assert_eq!(buf, [8u8; 32]);
        assert!(s.read_page(2, &mut buf).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn publish_renames_while_descriptor_stays_live() {
        let from = tmp("publish.tmp");
        let to = tmp("publish.final");
        let s = FileStore::create(&from, 16).unwrap();
        s.write_page(0, &[3u8; 16]).unwrap();
        s.sync().unwrap();
        s.publish(&to).unwrap();
        assert!(!from.exists());
        assert!(to.exists());
        assert_eq!(s.path(), to);
        let mut buf = [0u8; 16];
        s.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 16]);
        std::fs::remove_file(&to).unwrap();
    }
}
