//! The sharding layer: `ShardedTable`, a curve-partitioned table whose
//! shards execute queries concurrently.
//!
//! §I of the paper motivates SFC partitioning for distributed spatial data
//! and load balancing: [`partition_universe`](crate::partition_universe)
//! splits the curve into `k` contiguous index ranges, each owned by one
//! worker. `ShardedTable` turns that into a query engine: records are
//! placed in the shard owning their curve key, a rectangle query's cluster
//! ranges are split at shard boundaries, and the per-shard pieces are
//! scanned concurrently under [`std::thread::scope`] — each shard modelling
//! an independent disk/worker, so a query's simulated latency is the
//! *slowest* shard's I/O, not the sum.
//!
//! Skewed data stresses this design exactly as it does real systems: the
//! partitioning balances *cells*, not records, so a hotspot concentrates
//! records (and scan work) in few shards — measurable here via
//! [`ShardedTable::shard_sizes`] and the per-shard stats of
//! [`ShardedTable::query_rect_with_shard_stats`].

use crate::backend::{Backend, MemoryBackend, PagedBackend};
use crate::disk::{DiskModel, IoStats};
use crate::partition::{partition_universe, Partition};
use crate::plan::{Planner, QueryPlan};
use crate::store::PageStore;
use crate::stored::{FileBackend, StoreConfig, StoreFactory};
use crate::table::{keyed_records, QueryOptions, QueryResult, RangeMode, Record, ValueGuard};
use crate::wal::WalCodec;
use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::{coalesce_ranges, coalesce_to_budget, RectQuery, ScratchPool};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

/// One deferred write against a sharded table, applied through
/// [`ShardedTable::apply_batch`]. Carries the same semantics as the
/// corresponding single-record methods: `Insert` allows duplicates,
/// `Update` replaces-or-inserts, `Delete` removes the first record at the
/// point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOp<const D: usize, V> {
    /// Insert a record (duplicates allowed, like
    /// [`ShardedTable::insert`]).
    Insert(Point<D>, V),
    /// Replace the payload at a point, inserting if vacant (like
    /// [`ShardedTable::update`]).
    Update(Point<D>, V),
    /// Remove the first record at a point (like
    /// [`ShardedTable::delete`]).
    Delete(Point<D>),
}

impl<const D: usize, V> BatchOp<D, V> {
    /// The point this write touches.
    pub fn point(&self) -> Point<D> {
        match self {
            BatchOp::Insert(p, _) | BatchOp::Update(p, _) | BatchOp::Delete(p) => *p,
        }
    }
}

/// How many recent epoch versions a table keeps alive for
/// [`ShardedTable::snapshot_at`] time-travel reads, beyond the current one.
///
/// Both bounds apply: a version is evicted once the window exceeds
/// `epochs` *or* the retained versions' estimated footprint exceeds
/// `bytes` (a conservative per-version estimate of `records × entry
/// size`, ignoring the page sharing that usually makes retention far
/// cheaper). Eviction only drops the *table's* reference — a reader still
/// pinning an evicted version keeps it (and every page it shares) alive
/// until the pin drops; that `Arc` refcount is the whole GC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Maximum number of superseded versions retained (the current
    /// version is always reachable and never counts).
    pub epochs: usize,
    /// Maximum estimated total footprint of retained versions, in bytes.
    pub bytes: u64,
}

impl Default for RetentionPolicy {
    /// Eight epochs, unbounded bytes — enough history for a serving tier
    /// to answer "just now" time-travel reads without measurable memory
    /// cost on COW-shared pages.
    fn default() -> Self {
        RetentionPolicy {
            epochs: 8,
            bytes: u64::MAX,
        }
    }
}

/// One immutable epoch-stamped version of a sharded table's contents.
///
/// A version owns its shard backends through `Arc`s: installing epoch
/// `e + 1` clones the `Arc`s of untouched shards and forks
/// ([`Backend::fork`]) only the shards the batch wrote — and the fork
/// itself shares all unwritten B+-tree pages. Readers holding a version
/// (via [`ShardedTable::snapshot`]/[`ShardedTable::snapshot_at`], or
/// implicitly for the duration of any query) observe it forever unchanged.
pub struct TableVersion<B> {
    epoch: u64,
    shards: Vec<Arc<B>>,
    records: u64,
}

impl<B> TableVersion<B> {
    /// The epoch this version materializes: the number of applied batches
    /// since the table was built (or the epoch stamped by recovery).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records stored in this version.
    pub fn len(&self) -> usize {
        self.records as usize
    }

    /// Whether this version holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }
}

/// Manual impl: cloning a version is O(shards) `Arc` bumps and never
/// touches backend contents, so no `B: Clone` bound is wanted.
impl<B> Clone for TableVersion<B> {
    fn clone(&self) -> Self {
        TableVersion {
            epoch: self.epoch,
            shards: self.shards.clone(),
            records: self.records,
        }
    }
}

/// Copy-on-write access to one shard slot of a version under
/// construction: fork the backend if the `Arc` is shared (some other
/// version or reader also holds it), then hand out the unique `&mut`.
fn cow_shard<V, B: Backend<V>>(slot: &mut Arc<B>) -> &mut B {
    if Arc::get_mut(slot).is_none() {
        *slot = Arc::new(slot.fork());
    }
    Arc::get_mut(slot).expect("slot was just made unique")
}

/// A spatial table split into contiguous curve-range shards that are
/// scanned concurrently, with MVCC epoch versions.
///
/// Shards are ordered by curve range, so concatenating per-shard results in
/// shard order preserves global curve-key order — a sharded query returns
/// exactly what the equivalent [`SfcTable`](crate::SfcTable) returns.
///
/// Shard state lives in an immutable, epoch-stamped [`TableVersion`]
/// behind an atomic pointer: every read path **pins** the current version
/// (one `Arc` clone under a momentarily-held lock) and then scans it with
/// no lock held at all, while [`Self::apply_batch`] builds the next
/// version copy-on-write — forking only the shards (and within them only
/// the B+-tree pages) the batch writes — and installs it with a pointer
/// swap. Readers and the writer therefore never block each other, and
/// **every scan observes exactly one epoch**, even when it straddles
/// shards mid-apply. Superseded versions stay reachable for
/// [`Self::snapshot_at`] time-travel reads within a bounded
/// [`RetentionPolicy`] window; the single-record write methods keep their
/// `&mut self` signatures for callers that own the table exclusively and
/// edit the current version in place (copying any page a pinned reader
/// still protects).
pub struct ShardedTable<C, V, const D: usize, B = MemoryBackend<Record<D, V>>> {
    curve: C,
    parts: Vec<Partition>,
    /// The current version. The lock is held only long enough to clone
    /// (readers) or swap (the writer) the `Arc` — never across a scan or
    /// an apply.
    current: RwLock<Arc<TableVersion<B>>>,
    /// Superseded versions, oldest first, bounded by `retention`.
    retained: Mutex<VecDeque<Arc<TableVersion<B>>>>,
    retention: RetentionPolicy,
    /// Serializes version installs (batch applies, restores): versions
    /// form a linear history, so there is exactly one version under
    /// construction at any time.
    write_gate: Mutex<()>,
    model: DiskModel,
    scratch: ScratchPool<D>,
    /// Total stored records, maintained by every write path so
    /// [`Self::len`]/[`Self::density`] — called per planned query — never
    /// touch the version lock (a query would otherwise pay two lock
    /// hops per plan).
    records: std::sync::atomic::AtomicU64,
    // `V` only occurs inside `B` (as `Backend<Record<D, V>>`); the `fn`
    // wrapper keeps the marker from affecting auto traits or variance.
    _values: std::marker::PhantomData<fn() -> V>,
}

/// Work split of one query: for each shard (by position in `parts`), the
/// sub-ranges of the query's clusters that fall inside it.
type ShardWork = Vec<Vec<(u64, u64)>>;

impl<const D: usize, C, V> ShardedTable<C, V, D>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
{
    /// Builds a sharded table over `curve` with `shard_count` shards
    /// (in-memory backends), placing each record in the shard owning its
    /// curve key.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn build(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        shard_count: usize,
    ) -> Result<Self, SfcError> {
        Self::build_with(curve, records, model, shard_count, |chunk, _| {
            MemoryBackend::bulk_load(chunk)
        })
    }
}

impl<const D: usize, C, V> ShardedTable<C, V, D, PagedBackend<Record<D, V>>>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
{
    /// Builds a sharded table whose shards each front their pages with an
    /// LRU buffer pool of `pool_pages` pages (see
    /// [`SfcTable::build_paged`](crate::SfcTable::build_paged)).
    ///
    /// # Errors
    /// If any point lies outside the curve's universe.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn build_paged(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        shard_count: usize,
        pool_pages: usize,
    ) -> Result<Self, SfcError> {
        Self::build_with(curve, records, model, shard_count, |chunk, model| {
            PagedBackend::bulk_load(chunk, model, pool_pages)
        })
    }
}

impl<const D: usize, C, V> ShardedTable<C, V, D, FileBackend<Record<D, V>>>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
    Record<D, V>: WalCodec,
{
    /// Builds a sharded table whose shards are genuinely disk-resident:
    /// each shard's records are bulk-built into an immutable segment file
    /// `dir/shard<i>.g<N>.seg` (see
    /// [`SfcTable::build_stored`](crate::SfcTable::build_stored)).
    ///
    /// # Errors
    /// If any point lies outside the curve's universe, or segment I/O
    /// fails.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn build_stored(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        shard_count: usize,
        dir: &Path,
        cfg: StoreConfig,
    ) -> Result<Self, SfcError> {
        Self::try_build_with(curve, records, model, shard_count, |idx, chunk, _| {
            FileBackend::create(dir, &format!("shard{idx}"), cfg, chunk)
        })
    }
}

impl<const D: usize, C, V, S> ShardedTable<C, V, D, FileBackend<Record<D, V>, S>>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
    Record<D, V>: WalCodec,
    S: PageStore,
{
    /// [`Self::build_stored`] with an explicit [`StoreFactory`] — the hook
    /// fault-injecting test stores and alternative media ride in through.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe, or segment I/O
    /// fails.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn build_stored_with(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        shard_count: usize,
        dir: &Path,
        cfg: StoreConfig,
        factory: StoreFactory<S>,
    ) -> Result<Self, SfcError> {
        Self::try_build_with(curve, records, model, shard_count, |idx, chunk, _| {
            FileBackend::create_with(dir, &format!("shard{idx}"), cfg, factory.clone(), chunk)
        })
    }
}

impl<const D: usize, C, V, B> ShardedTable<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
    B: Backend<Record<D, V>>,
{
    /// Generic build: keys and sorts the records once, cuts them at the
    /// partition boundaries of [`partition_universe`], and bulk-loads each
    /// shard's chunk through `make_backend`.
    fn build_with(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        shard_count: usize,
        make_backend: impl Fn(Vec<(u64, Record<D, V>)>, DiskModel) -> B,
    ) -> Result<Self, SfcError> {
        Self::try_build_with(curve, records, model, shard_count, |_, chunk, model| {
            Ok(make_backend(chunk, model))
        })
    }

    /// The fallible twin of `build_with`, for backends whose construction
    /// performs real I/O; `make_backend` also receives the shard index so
    /// disk-resident shards can claim distinct files.
    fn try_build_with(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        shard_count: usize,
        make_backend: impl Fn(usize, Vec<(u64, Record<D, V>)>, DiskModel) -> Result<B, SfcError>,
    ) -> Result<Self, SfcError> {
        assert!(shard_count >= 1, "need at least one shard");
        let parts = partition_universe(&curve, shard_count);
        let mut keyed = keyed_records(&curve, records)?;
        let total = keyed.len() as u64;
        let mut shards = Vec::with_capacity(parts.len());
        // `keyed` is sorted, so each shard's records are a prefix of the
        // remainder: split it off partition by partition.
        for (rev_idx, part) in parts.iter().enumerate().rev() {
            let cut = keyed.partition_point(|&(k, _)| k < part.lo);
            shards.push(Arc::new(make_backend(
                rev_idx,
                keyed.split_off(cut),
                model,
            )?));
        }
        shards.reverse();
        debug_assert!(keyed.is_empty());
        Ok(ShardedTable {
            curve,
            parts,
            current: RwLock::new(Arc::new(TableVersion {
                epoch: 0,
                shards,
                records: total,
            })),
            retained: Mutex::new(VecDeque::new()),
            retention: RetentionPolicy::default(),
            write_gate: Mutex::new(()),
            model,
            scratch: ScratchPool::new(),
            records: std::sync::atomic::AtomicU64::new(total),
            _values: std::marker::PhantomData,
        })
    }

    /// Pins the current version: after this one `Arc` clone (under a
    /// momentarily-held read lock) the caller reads the version with no
    /// lock at all, unaffected by any concurrent apply.
    fn pin(&self) -> Arc<TableVersion<B>> {
        self.current
            .read()
            .expect("version pointer poisoned by a panicked writer")
            .clone()
    }

    /// Publishes `new` as the current version and pushes the superseded
    /// one into the retention window, evicting past the policy bounds.
    /// Callers hold `write_gate`.
    fn install(&self, new: Arc<TableVersion<B>>) {
        let prev = {
            let mut cur = self
                .current
                .write()
                .expect("version pointer poisoned by a panicked writer");
            std::mem::replace(&mut *cur, new)
        };
        let mut retained = self.retained.lock().expect("retention window poisoned");
        retained.push_back(prev);
        while retained.len() > self.retention.epochs {
            retained.pop_front();
        }
        // Conservative per-entry footprint: versions share unwritten
        // pages, so the true marginal cost is usually far lower.
        let entry_bytes = (std::mem::size_of::<Record<D, V>>() + std::mem::size_of::<u64>()) as u64;
        let mut estimated: u64 = retained.iter().map(|v| v.records * entry_bytes).sum();
        while estimated > self.retention.bytes {
            match retained.pop_front() {
                Some(v) => estimated -= v.records * entry_bytes,
                None => break,
            }
        }
    }

    /// Installs `new` and discards all retained history — for operations
    /// (restore, epoch re-stamping) after which older versions no longer
    /// belong to the same timeline. Callers hold `write_gate`.
    fn install_and_clear_history(&self, new: Arc<TableVersion<B>>) {
        {
            let mut cur = self
                .current
                .write()
                .expect("version pointer poisoned by a panicked writer");
            *cur = new;
        }
        self.retained
            .lock()
            .expect("retention window poisoned")
            .clear();
    }

    /// Exclusive in-place access to the current version for the
    /// single-record `&mut self` writers. Pages a live pin still protects
    /// are copied, not edited ([`Arc::make_mut`] / [`cow_shard`]).
    fn current_mut(&mut self) -> &mut TableVersion<B> {
        let cur = self
            .current
            .get_mut()
            .expect("version pointer poisoned by a panicked writer");
        Arc::make_mut(cur)
    }

    /// The retention policy bounding [`Self::snapshot_at`]'s window.
    pub fn retention(&self) -> RetentionPolicy {
        self.retention
    }

    /// Replaces the retention policy and immediately applies its bounds
    /// to the retained window.
    pub fn set_retention(&mut self, policy: RetentionPolicy) {
        self.retention = policy;
        let retained = self.retained.get_mut().expect("retention window poisoned");
        while retained.len() > policy.epochs {
            retained.pop_front();
        }
        let entry_bytes = (std::mem::size_of::<Record<D, V>>() + std::mem::size_of::<u64>()) as u64;
        let mut estimated: u64 = retained.iter().map(|v| v.records * entry_bytes).sum();
        while estimated > policy.bytes {
            match retained.pop_front() {
                Some(v) => estimated -= v.records * entry_bytes,
                None => break,
            }
        }
    }

    /// The epoch of the current version: the number of batches applied
    /// since the build, or whatever [`Self::set_epoch`] last stamped.
    pub fn version_epoch(&self) -> u64 {
        self.pin().epoch
    }

    /// Re-stamps the current version's epoch and discards retained
    /// history — the recovery hook: after a snapshot restore the replayed
    /// timeline restarts at the snapshot's epoch, so pre-restore versions
    /// are meaningless.
    pub fn set_epoch(&self, epoch: u64) {
        let _gate = self.write_gate.lock().expect("write gate poisoned");
        let base = self.pin();
        let mut restamped = TableVersion::clone(&base);
        restamped.epoch = epoch;
        self.install_and_clear_history(Arc::new(restamped));
    }

    /// Pins the current version as a snapshot handle: every read through
    /// it observes this exact epoch, however many batches are applied
    /// concurrently or afterwards.
    pub fn snapshot(&self) -> TableSnapshot<'_, C, V, D, B> {
        TableSnapshot {
            table: self,
            version: self.pin(),
        }
    }

    /// Pins the version of epoch `epoch` from the current version or the
    /// retention window — the time-travel entry point. Returns `None` if
    /// that epoch has been evicted (or never existed); durable callers
    /// fall back to WAL replay.
    pub fn snapshot_at(&self, epoch: u64) -> Option<TableSnapshot<'_, C, V, D, B>> {
        let current = self.pin();
        let version = if current.epoch == epoch {
            Some(current)
        } else {
            self.retained
                .lock()
                .expect("retention window poisoned")
                .iter()
                .find(|v| v.epoch == epoch)
                .cloned()
        };
        version.map(|version| TableSnapshot {
            table: self,
            version,
        })
    }

    /// Epochs currently answerable by [`Self::snapshot_at`], ascending
    /// (retained window, then the current epoch).
    pub fn retained_epochs(&self) -> Vec<u64> {
        let mut epochs: Vec<u64> = self
            .retained
            .lock()
            .expect("retention window poisoned")
            .iter()
            .map(|v| v.epoch)
            .collect();
        epochs.push(self.pin().epoch);
        epochs
    }

    /// The curve ordering this table.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// The disk cost model used for simulated timings (per shard).
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.parts.len()
    }

    /// The curve-range partitions backing the shards.
    pub fn partitions(&self) -> &[Partition] {
        &self.parts
    }

    /// Records per shard — the load-balance view ("imbalance" in the sense
    /// of [`PartitionMetrics`](crate::PartitionMetrics), but record-weighted
    /// rather than cell-weighted, which is what skewed data distorts).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.pin().shards.iter().map(|s| s.len()).collect()
    }

    /// Total number of stored records (a lock-free counter maintained by
    /// every write path — reading it never touches the shard locks).
    pub fn len(&self) -> usize {
        self.records.load(std::sync::atomic::Ordering::Relaxed) as usize
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record density: stored records per curve cell, the planner's
    /// expected yield of a scanned key span.
    pub fn density(&self) -> f64 {
        crate::plan::record_density(self.len(), self.curve.universe().cell_count())
    }

    /// The shard (by position) owning curve key `key`.
    fn shard_of_key(&self, key: u64) -> usize {
        let pos = self.parts.partition_point(|part| part.hi < key);
        // `partition_universe` covers every curve key and all keys come
        // from validated points, so this is unreachable today — but guard
        // in every build profile with a clear message (the `owner_of`
        // lesson: a vanished debug_assert leaves an opaque index panic) in
        // case a future constructor accepts caller-supplied partitions.
        assert!(
            pos < self.parts.len() && self.parts[pos].lo <= key,
            "curve key {key} is not covered by the table's {} partition(s)",
            self.parts.len()
        );
        pos
    }

    /// Inserts a record into the shard owning its curve key.
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn insert(&mut self, point: Point<D>, value: V) -> Result<(), SfcError> {
        let key = self.curve.index_of(point)?;
        let shard = self.shard_of_key(key);
        let ver = self.current_mut();
        cow_shard(&mut ver.shards[shard]).insert(key, Record { point, value });
        ver.records += 1;
        self.add_records(1);
        Ok(())
    }

    /// Removes the record at `point`, returning its payload.
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn delete(&mut self, point: Point<D>) -> Result<Option<V>, SfcError> {
        let key = self.curve.index_of(point)?;
        let shard = self.shard_of_key(key);
        let ver = self.current_mut();
        let removed = cow_shard(&mut ver.shards[shard])
            .remove(key)
            .map(|rec| rec.value);
        if removed.is_some() {
            ver.records -= 1;
            self.add_records(-1);
        }
        Ok(removed)
    }

    /// Replaces the payload at `point` in place, returning the previous
    /// one; inserts (and returns `None`) if the cell is vacant.
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn update(&mut self, point: Point<D>, value: V) -> Result<Option<V>, SfcError> {
        let key = self.curve.index_of(point)?;
        let shard = self.shard_of_key(key);
        let ver = self.current_mut();
        let backend = cow_shard(&mut ver.shards[shard]);
        if let Some(rec) = backend.get_mut(key) {
            Ok(Some(std::mem::replace(&mut rec.value, value)))
        } else {
            backend.insert(key, Record { point, value });
            ver.records += 1;
            self.add_records(1);
            Ok(None)
        }
    }

    /// Adjusts the lock-free record counter by `delta`.
    fn add_records(&self, delta: i64) {
        use std::sync::atomic::Ordering;
        if delta >= 0 {
            self.records.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.records
                .fetch_sub(delta.unsigned_abs(), Ordering::Relaxed);
        }
    }

    /// Validates and keys a batch (one [`SpaceFillingCurve::fill_indices`]
    /// call) and stable-sorts it into curve order, returning the per-op
    /// keys and the sorted submission-index permutation — the shared
    /// front half of every batch-apply path. Stable sort: ops on the
    /// same key keep their submission order.
    fn key_batch(&self, ops: &[BatchOp<D, V>]) -> Result<(Vec<u64>, Vec<usize>), SfcError> {
        let universe = self.curve.universe();
        let points: Vec<Point<D>> = ops.iter().map(BatchOp::point).collect();
        for p in &points {
            if !universe.contains(*p) {
                return Err(SfcError::PointOutOfBounds {
                    point: p.to_string(),
                    side: universe.side(),
                });
            }
        }
        let mut keys: Vec<u64> = Vec::with_capacity(points.len());
        self.curve.fill_indices(&points, &mut keys);
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        Ok((keys, order))
    }

    /// Applies a batch of writes through `&self` on the single-threaded
    /// reference path: validates and keys every point with one
    /// [`SpaceFillingCurve::fill_indices`] call, stably sorts the batch
    /// into curve order, forks each touched shard copy-on-write, applies
    /// that shard's contiguous run to the fork — in place via the sorted
    /// index permutation, with no per-shard staging — and installs the
    /// whole set as the next epoch version with one pointer swap.
    ///
    /// [`Self::apply_batch`] produces byte-identical state and identical
    /// results while applying the per-shard runs concurrently; this
    /// serial form is the semantic reference the equivalence proptests
    /// and the `engine/apply_parallel` bench compare against, and the
    /// path `apply_batch` itself takes for small batches.
    ///
    /// An empty batch installs nothing and bumps no epoch.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe (checked before
    /// anything is applied).
    pub fn apply_batch_serial(&self, ops: Vec<BatchOp<D, V>>) -> Result<Vec<Option<V>>, SfcError> {
        let (keys, order) = self.key_batch(&ops)?;
        let mut slots: Vec<Option<BatchOp<D, V>>> = ops.into_iter().map(Some).collect();
        let mut results: Vec<Option<V>> = Vec::new();
        results.resize_with(slots.len(), || None);
        if order.is_empty() {
            return Ok(results);
        }
        let _gate = self.write_gate.lock().expect("write gate poisoned");
        let base = self.pin();
        let mut shards = base.shards.clone();
        let mut at = 0usize;
        let mut delta = 0i64;
        while at < order.len() {
            let shard = self.shard_of_key(keys[order[at]]);
            let end = at
                + order[at..]
                    .iter()
                    .take_while(|&&i| keys[i] <= self.parts[shard].hi)
                    .count();
            // Fork the touched shard (readers keep scanning `base`'s copy
            // untouched); untouched shards stay shared `Arc`s.
            let backend = cow_shard(&mut shards[shard]);
            for pos in at..end {
                // The permutation visits `slots` in curve order, not
                // submission order — a data-dependent stride the hardware
                // prefetcher cannot follow. Hint a few ops ahead so each
                // slot's line arrives while earlier ops apply.
                if let Some(&ahead) = order.get(pos + APPLY_PREFETCH_DISTANCE) {
                    crate::prefetch::prefetch_read(&slots[ahead]);
                }
                let i = order[pos];
                let op = slots[i].take().expect("each op applied once");
                results[i] = apply_one(backend, keys[i], op, &mut delta);
            }
            at = end;
        }
        let records = base
            .records
            .checked_add_signed(delta)
            .expect("record count underflow");
        self.install(Arc::new(TableVersion {
            epoch: base.epoch + 1,
            shards,
            records,
        }));
        self.records
            .store(records, std::sync::atomic::Ordering::Relaxed);
        Ok(results)
    }

    /// Streams shard `shard`'s entries in ascending key order through the
    /// backend's [`Backend::persist`] hook — the building block of
    /// curve-ordered snapshots ([`write_snapshot`](crate::write_snapshot)
    /// walks shards in partition order, so the concatenation of these
    /// streams is the whole table in curve-key order).
    ///
    /// The stream is taken from one pinned version, so a snapshot walking
    /// all shards through this method observes exactly one epoch even if
    /// batches land between per-shard calls — but only *per call*; use
    /// [`Self::snapshot`] and [`TableSnapshot::persist_shard`] to hold one
    /// epoch across the whole walk.
    ///
    /// # Errors
    /// On storage failure reading a disk-resident shard.
    ///
    /// # Panics
    /// If `shard` is out of range.
    pub fn persist_shard(
        &self,
        shard: usize,
        sink: &mut dyn FnMut(u64, &Record<D, V>),
    ) -> Result<(), SfcError> {
        self.pin().shards[shard].persist(sink)
    }

    /// Replaces the table's entire contents with `entries` — keyed
    /// records sorted ascending by curve key, as produced by
    /// [`read_snapshot`](crate::read_snapshot) or by concatenating
    /// [`Self::persist_shard`] streams. The entries are re-cut at *this*
    /// table's partition boundaries and handed to each shard's
    /// [`Backend::restore`], so a snapshot taken at one shard count
    /// restores into any other: same committed state, identical
    /// [`Self::query_rect`] answers, whatever the layout.
    ///
    /// Keys are trusted to match this table's curve (they are validated
    /// against the universe, but not re-derived from the points — the
    /// durable layer guarantees curve identity by construction).
    ///
    /// # Errors
    /// If any key lies outside the curve's universe or the entries are
    /// not sorted (a snapshot from a different universe, a foreign
    /// format revision, or corruption the checksum missed) — recovery
    /// failures are reported, never panicked, so a durable engine's
    /// `open` can surface them.
    pub fn restore_entries(&self, entries: Vec<(u64, Record<D, V>)>) -> Result<(), SfcError> {
        let cells = self.curve.universe().cell_count();
        if let Some(&(key, _)) = entries.iter().find(|&&(k, _)| k >= cells) {
            return Err(SfcError::IndexOutOfBounds { index: key, cells });
        }
        if !entries.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err(SfcError::Storage {
                context: "restoring table: snapshot entries are not in curve-key order".into(),
            });
        }
        let total = entries.len() as u64;
        let mut remainder = entries;
        // Cut the sorted entries at partition boundaries, back to front
        // (mirroring `build_with`), restore each shard into a fork, and
        // install the restored set as one new version: a scan racing the
        // restore observes either the entire pre-restore state or the
        // entire post-restore state, never a mix. Retained history is
        // discarded — the restored timeline replaces it (recovery
        // re-stamps the epoch via [`Self::set_epoch`]).
        let _gate = self.write_gate.lock().expect("write gate poisoned");
        let base = self.pin();
        let mut chunks: Vec<Vec<(u64, Record<D, V>)>> = Vec::new();
        chunks.resize_with(self.parts.len(), Vec::new);
        for (shard, part) in self.parts.iter().enumerate().rev() {
            let cut = remainder.partition_point(|&(k, _)| k < part.lo);
            chunks[shard] = remainder.split_off(cut);
        }
        debug_assert!(remainder.is_empty());
        let shards: Vec<Arc<B>> = chunks
            .into_iter()
            .enumerate()
            .map(|(shard, chunk)| {
                let mut backend = base.shards[shard].fork();
                backend.restore(chunk)?;
                Ok(Arc::new(backend))
            })
            .collect::<Result<_, SfcError>>()?;
        self.install_and_clear_history(Arc::new(TableVersion {
            epoch: base.epoch,
            shards,
            records: total,
        }));
        self.records
            .store(total, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Compacts every shard's backend ([`Backend::compact`]) into one new
    /// version at the **same** epoch: logical state is untouched — for
    /// disk-resident backends the overlay and removal edits are folded
    /// into a fresh base segment, so subsequent scans run against one
    /// sequential file again. A no-op (and free) for in-memory backends.
    /// Readers pinned to older versions keep their segment files alive
    /// through the open descriptors even after the old generation is
    /// unlinked.
    ///
    /// # Errors
    /// If a backend's compaction I/O fails; the table keeps serving the
    /// pre-compaction version in that case.
    pub fn compact_shards(&self) -> Result<(), SfcError> {
        let _gate = self.write_gate.lock().expect("write gate poisoned");
        let base = self.pin();
        let shards: Vec<Arc<B>> = base
            .shards
            .iter()
            .map(|shard| {
                let mut backend = shard.fork();
                backend.compact()?;
                Ok(Arc::new(backend))
            })
            .collect::<Result<_, SfcError>>()?;
        self.install(Arc::new(TableVersion {
            epoch: base.epoch,
            shards,
            records: base.records,
        }));
        Ok(())
    }

    /// Point lookup (routed to the owning shard; no threads involved),
    /// returned as a **pinned guard**: the value is not copied — the
    /// guard holds the storage page of the version current at call time,
    /// so it stays valid and bit-identical whatever is applied (or
    /// dropped) afterwards. If the cell holds duplicates, the guard pins
    /// the **newest** one. Callers needing an owned payload chain
    /// [`ValueGuard::cloned`].
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn get(&self, p: Point<D>) -> Result<Option<ValueGuard<D, V>>, SfcError> {
        let key = self.curve.index_of(p)?;
        let shard = self.shard_of_key(key);
        Ok(self.pin().shards[shard]
            .get_pinned(key)?
            .map(ValueGuard::new))
    }

    /// Point lookup returning an owned copy of the payload.
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    #[deprecated(since = "0.8.0", note = "use `get(p)?.map(|g| g.cloned())` instead")]
    pub fn get_cloned(&self, p: Point<D>) -> Result<Option<V>, SfcError> {
        Ok(self.get(p)?.map(|guard| guard.cloned()))
    }

    /// Splits the cluster ranges of `q` at shard boundaries. Returns the
    /// per-shard sub-range lists and the total sub-range count.
    fn split_query(&self, q: &RectQuery<D>) -> Result<(ShardWork, u64), SfcError> {
        self.check_fits(q)?;
        let mut scratch = self.scratch.checkout();
        let ranges = scratch.ranges_of(&self.curve, q);
        Ok(self.split_ranges(ranges))
    }

    /// Splits arbitrary sorted ranges (a plan's, or a full decomposition's)
    /// at shard boundaries.
    fn split_ranges(&self, ranges: &[(u64, u64)]) -> (ShardWork, u64) {
        let mut work: ShardWork = vec![Vec::new(); self.parts.len()];
        let mut pieces = 0u64;
        for &(mut lo, hi) in ranges {
            let mut shard = self.shard_of_key(lo);
            loop {
                let cut = self.parts[shard].hi.min(hi);
                work[shard].push((lo, cut));
                pieces += 1;
                if cut == hi {
                    break;
                }
                lo = cut + 1;
                shard += 1;
            }
        }
        (work, pieces)
    }

    fn check_fits(&self, q: &RectQuery<D>) -> Result<(), SfcError> {
        let side = self.curve.universe().side();
        if !q.fits_in(side) {
            return Err(SfcError::PointOutOfBounds {
                point: Point::new(q.hi()).to_string(),
                side,
            });
        }
        Ok(())
    }
}

/// How many permutation steps ahead the batch-apply loops hint `slots`
/// entries into cache (see [`crate::prefetch`]): far enough to cover an
/// L2 miss under the loop's per-op work, near enough that hinted lines
/// survive until use.
const APPLY_PREFETCH_DISTANCE: usize = 8;

/// Batches below this many ops always take the serial apply path: their
/// per-shard slices are too small to amortize thread spawns (an epoch of
/// a few hundred ops applies in tens of microseconds — comparable to
/// starting one thread). Recovery replay and bulk loads run far above it.
const PARALLEL_APPLY_MIN_OPS: usize = 1024;

/// Whether this host can actually run shard workers concurrently. On a
/// single-core machine the parallel apply is pure spawn overhead (the
/// workers serialize anyway), so `apply_batch` stays on the serial path
/// there — behavior is identical either way, only the schedule differs.
fn host_has_parallelism() -> bool {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }) > 1
}

impl<const D: usize, C, V, B> ShardedTable<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send,
    B: Backend<Record<D, V>> + Send + Sync,
{
    /// Applies a batch of writes through `&self`: validates and keys every
    /// point with one [`SpaceFillingCurve::fill_indices`] call, stably
    /// sorts the batch into curve order, and applies each shard's
    /// contiguous slice under that shard's write lock — so the B+-trees
    /// see sorted bulk mutations instead of random single inserts, and
    /// readers of untouched shards are never blocked.
    ///
    /// Large batches (1024+ ops touching more than one shard, on hosts
    /// with more than one core) apply their per-shard slices
    /// **concurrently** via [`Self::apply_batch_parallel`]: the slices
    /// are disjoint by construction and each worker owns its shard's
    /// private fork, so the parallel apply is observationally identical
    /// to [`Self::apply_batch_serial`] — same displaced payloads, same
    /// final state, same all-shards-at-once version install — with the
    /// epoch's critical path shrunk to the slowest shard. Smaller
    /// batches (and single-core hosts) stay on the serial path (the
    /// equivalence proptests pin both).
    ///
    /// Returns the displaced payloads in **submission order** (`None` for
    /// inserts and for deletes/updates of vacant cells). Ops on the same
    /// point apply in submission order; no write is applied if any point
    /// is invalid.
    ///
    /// This is the write entry point the epoch-batching serving layer
    /// (`sfc-engine`) drives — both for live epochs and for recovery
    /// replay. The batch becomes visible as one new epoch version in a
    /// single pointer swap: a reader's scan observes either the entire
    /// pre-batch table or the entire post-batch table — never a mix,
    /// even across shards — and in-flight scans that pinned the old
    /// version complete against it untouched.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe (checked before
    /// anything is applied).
    pub fn apply_batch(&self, ops: Vec<BatchOp<D, V>>) -> Result<Vec<Option<V>>, SfcError> {
        let total = ops.len();
        if total < PARALLEL_APPLY_MIN_OPS || !host_has_parallelism() {
            return self.apply_batch_serial(ops);
        }
        self.apply_batch_parallel(ops)
    }

    /// The always-threaded form of [`Self::apply_batch`]: per-shard
    /// slices apply concurrently under [`std::thread::scope`] regardless
    /// of batch size or host core count (a batch confined to one shard
    /// still applies inline — threads would buy nothing). Observationally
    /// identical to [`Self::apply_batch_serial`]; the equivalence
    /// proptests drive this form directly so the threaded path is pinned
    /// even where `apply_batch`'s heuristics would choose the serial one.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe (checked before
    /// anything is applied).
    pub fn apply_batch_parallel(
        &self,
        ops: Vec<BatchOp<D, V>>,
    ) -> Result<Vec<Option<V>>, SfcError> {
        let total = ops.len();
        let (keys, order) = self.key_batch(&ops)?;
        // Cut the sorted run at shard boundaries into owned per-shard
        // work lists of `(submission index, key, op)`.
        type ShardSlice<const D: usize, V> = (usize, Vec<(usize, u64, BatchOp<D, V>)>);
        let mut slots: Vec<Option<BatchOp<D, V>>> = ops.into_iter().map(Some).collect();
        let mut slices: Vec<ShardSlice<D, V>> = Vec::new();
        let mut at = 0usize;
        while at < order.len() {
            let shard = self.shard_of_key(keys[order[at]]);
            let end = at
                + order[at..]
                    .iter()
                    .take_while(|&&i| keys[i] <= self.parts[shard].hi)
                    .count();
            let slice: Vec<(usize, u64, BatchOp<D, V>)> = order[at..end]
                .iter()
                .enumerate()
                .map(|(n, &i)| {
                    // Same permutation-lookahead hint as the serial path:
                    // the gather walks `slots` in curve order.
                    if let Some(&ahead) = order.get(at + n + APPLY_PREFETCH_DISTANCE) {
                        crate::prefetch::prefetch_read(&slots[ahead]);
                    }
                    (i, keys[i], slots[i].take().expect("each op staged once"))
                })
                .collect();
            slices.push((shard, slice));
            at = end;
        }
        let mut results: Vec<Option<V>> = Vec::new();
        results.resize_with(total, || None);
        if slices.is_empty() {
            return Ok(results);
        }
        let _gate = self.write_gate.lock().expect("write gate poisoned");
        let base = self.pin();
        let mut shards = base.shards.clone();
        let mut delta = 0i64;
        if slices.len() <= 1 {
            // One shard owns the whole run: threads buy nothing.
            for (shard, slice) in slices {
                let backend = cow_shard(&mut shards[shard]);
                for (i, key, op) in slice {
                    results[i] = apply_one(backend, key, op, &mut delta);
                }
            }
        } else {
            // Each worker owns its shard's private fork outright — the
            // workers hold no lock and share nothing mutable, so the
            // apply contends with readers on exactly nothing.
            type ForkedShard<B, const D: usize, V> = (usize, B, Vec<(usize, u64, BatchOp<D, V>)>);
            let mut forked: Vec<ForkedShard<B, D, V>> = slices
                .into_iter()
                .map(|(shard, slice)| {
                    let backend = shards[shard].fork();
                    (shard, backend, slice)
                })
                .collect();
            type ShardChunk<V> = (Vec<(usize, Option<V>)>, i64);
            let chunks: Vec<ShardChunk<V>> = std::thread::scope(|s| {
                let handles: Vec<_> = forked
                    .iter_mut()
                    .map(|entry| {
                        s.spawn(move || {
                            let (_, backend, slice) = entry;
                            let mut local_delta = 0i64;
                            let pairs: Vec<(usize, Option<V>)> = slice
                                .drain(..)
                                .map(|(i, key, op)| {
                                    (i, apply_one(backend, key, op, &mut local_delta))
                                })
                                .collect();
                            (pairs, local_delta)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard apply worker panicked"))
                    .collect()
            });
            for (shard, backend, _) in forked {
                shards[shard] = Arc::new(backend);
            }
            for (pairs, d) in chunks {
                delta += d;
                for (i, displaced) in pairs {
                    results[i] = displaced;
                }
            }
        }
        let records = base
            .records
            .checked_add_signed(delta)
            .expect("record count underflow");
        self.install(Arc::new(TableVersion {
            epoch: base.epoch + 1,
            shards,
            records,
        }));
        self.records
            .store(records, std::sync::atomic::Ordering::Relaxed);
        Ok(results)
    }

    /// Answers a rectangle query: decomposes it into cluster ranges, splits
    /// them at shard boundaries, and scans the shards concurrently
    /// ([`std::thread::scope`]), merging records in shard order — which is
    /// curve-key order, so results match the unsharded table exactly.
    ///
    /// `opts` selects the execution strategy exactly as on
    /// [`SfcTable::query_rect`](crate::SfcTable::query_rect): exact
    /// cluster ranges (the default), gap-coalesced / seek-budgeted scans
    /// ([`RangeMode`]), or the adaptive planner
    /// ([`QueryOptions::planned`], whose chosen [`QueryPlan`] comes back
    /// in [`QueryResult::plan`]). The rows are identical whatever the
    /// strategy; only the seek/read-amplification trade moves.
    ///
    /// The merged [`IoStats`] *sum* the shards' I/O (total work); per-shard
    /// breakdowns — from which a parallel critical path `max(time_us)` can
    /// be computed — come from [`Self::query_rect_with_shard_stats`].
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn query_rect(
        &self,
        q: &RectQuery<D>,
        opts: &QueryOptions<'_>,
    ) -> Result<QueryResult<D, V>, SfcError> {
        if let Some(planner) = opts.planner {
            return self.query_planned_inner(q, planner).map(|(mut r, plan)| {
                r.plan = Some(plan);
                r
            });
        }
        match opts.mode {
            RangeMode::Exact => {
                let (result, _) = self.query_rect_with_shard_stats(q)?;
                Ok(result)
            }
            RangeMode::Coalesced { max_gap } => {
                self.query_coalesced_inner(q, |ranges| coalesce_ranges(ranges, max_gap))
            }
            RangeMode::Budget { max_ranges } => {
                self.query_coalesced_inner(q, |ranges| coalesce_to_budget(ranges, max_ranges))
            }
        }
    }

    /// The fixed-coalescing path behind [`Self::query_rect`]: `merge`
    /// shrinks the global decomposition before the shard split, and the
    /// concurrent scan filters out records from absorbed gap cells
    /// (`io.entries` counts the matching rows).
    fn query_coalesced_inner(
        &self,
        q: &RectQuery<D>,
        merge: impl FnOnce(&[(u64, u64)]) -> Vec<(u64, u64)>,
    ) -> Result<QueryResult<D, V>, SfcError> {
        self.check_fits(q)?;
        let version = self.pin();
        let merged = {
            let mut scratch = self.scratch.checkout();
            merge(scratch.ranges_of(&self.curve, q))
        };
        let (work, pieces) = self.split_ranges(&merged);
        let (records, per_shard) = self.scan_work(&version, &work, q, true)?;
        let mut io = IoStats::default();
        for stats in &per_shard {
            io.absorb(*stats);
        }
        Ok(QueryResult {
            records,
            ranges_scanned: pieces,
            io,
            plan: None,
        })
    }

    /// Like [`Self::query_rect`], but also returns each shard's own
    /// [`IoStats`] (indexed by shard, zeros for untouched shards) — the
    /// load-balance view: with one simulated disk per shard, the query's
    /// parallel latency is the maximum per-shard `time_us`, and the gap
    /// between that maximum and the mean is the skew the workload induced.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn query_rect_with_shard_stats(
        &self,
        q: &RectQuery<D>,
    ) -> Result<(QueryResult<D, V>, Vec<IoStats>), SfcError> {
        let version = self.pin();
        let (work, pieces) = self.split_query(q)?;
        let (records, per_shard) = self.scan_work(&version, &work, q, false)?;
        let mut io = IoStats::default();
        for stats in &per_shard {
            io.absorb(*stats);
        }
        Ok((
            QueryResult {
                records,
                ranges_scanned: pieces,
                io,
                plan: None,
            },
            per_shard,
        ))
    }

    /// Answers a rectangle query against a **reconstructed historical**
    /// state: `entries` (a curve-keyed snapshot stream, sorted ascending)
    /// with the WAL-prefix `ops` replayed on top, evaluated under this
    /// table's curve. The cold half of time-travel reads — the serving
    /// layer calls this when [`Self::snapshot_at`] misses the retention
    /// window and the epoch has to be rebuilt from disk.
    ///
    /// Replay reuses the exact batch-apply semantics of the live path
    /// (same keying, same stable curve-order sort, same per-op
    /// application), so the records returned are byte-identical to what
    /// [`Self::query_rect`] would have answered at that epoch. The scan
    /// runs over a single throwaway in-memory backend: `ranges_scanned`
    /// reports the query's unsharded clustering number and `io` the
    /// replay scan's own cost, not the historical layout's.
    ///
    /// # Errors
    /// If any replayed op or snapshot key lies outside the curve's
    /// universe, or if the query does not fit inside it.
    pub fn query_rect_replayed(
        &self,
        entries: Vec<(u64, Record<D, V>)>,
        ops: Vec<BatchOp<D, V>>,
        q: &RectQuery<D>,
    ) -> Result<QueryResult<D, V>, SfcError> {
        self.check_fits(q)?;
        let cells = self.curve.universe().cell_count();
        if let Some(&(key, _)) = entries.iter().find(|&&(k, _)| k >= cells) {
            return Err(SfcError::IndexOutOfBounds { index: key, cells });
        }
        if !entries.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err(SfcError::Storage {
                context: "replaying history: snapshot entries are not in curve-key order".into(),
            });
        }
        let (keys, order) = self.key_batch(&ops)?;
        let mut backend: MemoryBackend<Record<D, V>> = MemoryBackend::bulk_load(entries);
        let mut slots: Vec<Option<BatchOp<D, V>>> = ops.into_iter().map(Some).collect();
        let mut delta = 0i64;
        for &i in &order {
            let op = slots[i].take().expect("each op applied once");
            apply_one(&mut backend, keys[i], op, &mut delta);
        }
        let mut scratch = self.scratch.checkout();
        let ranges = scratch.ranges_of(&self.curve, q);
        let mut records = Vec::new();
        let pieces = ranges.len() as u64;
        let stats = scan_shard(&backend, ranges, q, false, &mut records)?;
        Ok(QueryResult {
            records,
            ranges_scanned: pieces,
            io: stats,
            plan: None,
        })
    }

    /// Plans a rectangle query without executing it (the `EXPLAIN` entry
    /// point): the plan is made on the *global* decomposition, before any
    /// shard-boundary splitting, so its budget reflects the query's true
    /// clustering.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn plan_rect(&self, q: &RectQuery<D>, planner: &Planner) -> Result<QueryPlan, SfcError> {
        self.check_fits(q)?;
        let mut scratch = self.scratch.checkout();
        let full = scratch.ranges_of(&self.curve, q);
        Ok(planner.plan_ranges(full, self.density()))
    }

    /// Answers a rectangle query through the adaptive planner.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    #[deprecated(
        since = "0.8.0",
        note = "use `query_rect(q, &QueryOptions::planned(planner))`; the plan is in `QueryResult::plan`"
    )]
    pub fn query_rect_planned(
        &self,
        q: &RectQuery<D>,
        planner: &Planner,
    ) -> Result<(QueryResult<D, V>, QueryPlan), SfcError> {
        self.query_planned_inner(q, planner)
    }

    /// The planner path behind [`Self::query_rect`]: plans the
    /// decomposition budget globally, splits the planned ranges at shard
    /// boundaries, scans concurrently (filtering out records from absorbed
    /// gap cells), and feeds both the merged [`IoStats`] and the per-shard
    /// breakdown back into the planner (hit rate and latency skew).
    fn query_planned_inner(
        &self,
        q: &RectQuery<D>,
        planner: &Planner,
    ) -> Result<(QueryResult<D, V>, QueryPlan), SfcError> {
        // Pin once: the plan is costed on this version's record density
        // and the scan executes against the same version, so the stats
        // fed back to the planner describe exactly the state it planned.
        let version = self.pin();
        self.check_fits(q)?;
        let plan = {
            let mut scratch = self.scratch.checkout();
            let full = scratch.ranges_of(&self.curve, q);
            let density =
                crate::plan::record_density(version.len(), self.curve.universe().cell_count());
            planner.plan_ranges(full, density)
        };
        let (work, pieces) = self.split_ranges(&plan.ranges);
        let started = std::time::Instant::now();
        let (records, per_shard) = self.scan_work(&version, &work, q, true)?;
        let wall_us = started.elapsed().as_secs_f64() * 1e6;
        let mut io = IoStats::default();
        for stats in &per_shard {
            io.absorb(*stats);
        }
        planner.observe(&io);
        planner.observe_shards(&per_shard);
        if io.real_reads > 0 {
            planner.observe_latency(io.real_seeks, io.real_reads, wall_us);
        }
        Ok((
            QueryResult {
                records,
                ranges_scanned: pieces,
                io,
                plan: None,
            },
            plan,
        ))
    }

    /// Scans a per-shard worklist against one pinned version, inline for
    /// a single involved shard and under [`std::thread::scope`]
    /// otherwise. No lock is held anywhere in the scan — the version is
    /// immutable — so scans never wait on writers (or each other). With
    /// `filter`, records outside `q` are dropped (plans absorb gap
    /// cells); without it they are debug-asserted impossible (exact
    /// decompositions never scan outside the query).
    fn scan_work(
        &self,
        version: &TableVersion<B>,
        work: &ShardWork,
        q: &RectQuery<D>,
        filter: bool,
    ) -> Result<(Vec<Record<D, V>>, Vec<IoStats>), SfcError> {
        let mut per_shard = vec![IoStats::default(); version.shards.len()];
        let mut records = Vec::new();
        let involved = work.iter().filter(|w| !w.is_empty()).count();
        if involved <= 1 {
            // One shard (or none): scan inline, no thread overhead.
            for (shard, ranges) in work.iter().enumerate() {
                if !ranges.is_empty() {
                    let backend: &B = &version.shards[shard];
                    per_shard[shard] = scan_shard(backend, ranges, q, filter, &mut records)?;
                }
            }
        } else {
            type WorkerOut<const D: usize, V> =
                Result<(usize, Vec<Record<D, V>>, IoStats), SfcError>;
            let chunks: Vec<WorkerOut<D, V>> = std::thread::scope(|s| {
                let handles: Vec<_> = work
                    .iter()
                    .enumerate()
                    .filter(|(_, ranges)| !ranges.is_empty())
                    .map(|(shard, ranges)| {
                        let backend: &B = &version.shards[shard];
                        s.spawn(move || {
                            let mut recs = Vec::new();
                            // Storage failure is a result, not a panic: a
                            // torn segment page must fail the query, not
                            // poison the process.
                            let stats = scan_shard(backend, ranges, q, filter, &mut recs)?;
                            Ok((shard, recs, stats))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            // Handles were spawned in shard order, so concatenation keeps
            // global curve-key order.
            for chunk in chunks {
                let (shard, recs, stats) = chunk?;
                per_shard[shard] = stats;
                records.extend(recs);
            }
        }
        Ok((records, per_shard))
    }

    /// Answers a batch of rectangle queries with one thread scope: each
    /// shard worker processes its sub-ranges of *every* query, so the
    /// per-query spawn cost is amortized across the batch — the
    /// concurrency analogue of
    /// [`SfcTable::query_rect_batch`](crate::SfcTable::query_rect_batch).
    ///
    /// # Errors
    /// If any query does not fit inside the universe.
    pub fn query_rect_batch(
        &self,
        queries: &[RectQuery<D>],
    ) -> Result<Vec<QueryResult<D, V>>, SfcError> {
        // One pin for the whole batch: every query in it observes the
        // same epoch.
        let version = self.pin();
        // Split every query first so errors surface before any scan work.
        let mut splits = Vec::with_capacity(queries.len());
        for q in queries {
            splits.push(self.split_query(q)?);
        }
        // Transpose into per-shard worklists of (query, lo, hi).
        let mut shard_work: Vec<Vec<(usize, u64, u64)>> = vec![Vec::new(); version.shards.len()];
        for (qi, (work, _)) in splits.iter().enumerate() {
            for (shard, ranges) in work.iter().enumerate() {
                for &(lo, hi) in ranges {
                    shard_work[shard].push((qi, lo, hi));
                }
            }
        }
        type Chunk<const D: usize, V> =
            Result<(usize, Vec<(usize, Vec<Record<D, V>>, IoStats)>), SfcError>;
        let chunks: Vec<Chunk<D, V>> = std::thread::scope(|s| {
            let handles: Vec<_> = shard_work
                .iter()
                .enumerate()
                .filter(|(_, wl)| !wl.is_empty())
                .map(|(shard, worklist)| {
                    let backend: &B = &version.shards[shard];
                    s.spawn(move || {
                        let mut out: Vec<(usize, Vec<Record<D, V>>, IoStats)> = Vec::new();
                        for &(qi, lo, hi) in worklist {
                            if out.last().is_none_or(|&(last_qi, _, _)| last_qi != qi) {
                                out.push((qi, Vec::new(), IoStats::default()));
                            }
                            let (_, recs, io) = out.last_mut().expect("just pushed");
                            let stats =
                                backend.scan(lo, hi, &mut |_, rec| recs.push(rec.clone()))?;
                            io.seeks += 1;
                            io.pages += stats.pages;
                            io.cache_hits += stats.cache_hits;
                        }
                        for (_, recs, io) in &mut out {
                            io.entries = recs.len() as u64;
                        }
                        Ok((shard, out))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut results: Vec<QueryResult<D, V>> = splits
            .iter()
            .map(|&(_, pieces)| QueryResult {
                records: Vec::new(),
                ranges_scanned: pieces,
                io: IoStats::default(),
                plan: None,
            })
            .collect();
        // Chunks arrive in shard order (spawn order), and within a shard in
        // query order, so per-query extension preserves curve-key order.
        for chunk in chunks {
            let (_, chunk) = chunk?;
            for (qi, recs, io) in chunk {
                results[qi].records.extend(recs);
                results[qi].io.absorb(io);
            }
        }
        Ok(results)
    }
}

/// A read handle pinned to one epoch version of a [`ShardedTable`] —
/// what [`ShardedTable::snapshot`] / [`ShardedTable::snapshot_at`]
/// return. Every query through the handle observes exactly this
/// version's state, byte-for-byte, regardless of concurrent or later
/// applies; holding the handle keeps the version (and all pages it
/// shares) alive past retention eviction.
pub struct TableSnapshot<'t, C, V, const D: usize, B = MemoryBackend<Record<D, V>>> {
    table: &'t ShardedTable<C, V, D, B>,
    version: Arc<TableVersion<B>>,
}

impl<const D: usize, C, V, B> TableSnapshot<'_, C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
    B: Backend<Record<D, V>>,
{
    /// The epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.version.epoch
    }

    /// Records stored at this epoch.
    pub fn len(&self) -> usize {
        self.version.len()
    }

    /// Whether this epoch's table is empty.
    pub fn is_empty(&self) -> bool {
        self.version.is_empty()
    }

    /// Record density at this epoch (records per curve cell) — what the
    /// planner uses when costing a query against this snapshot.
    pub fn density(&self) -> f64 {
        crate::plan::record_density(self.version.len(), self.table.curve.universe().cell_count())
    }

    /// Pinned point lookup at this epoch (see [`ShardedTable::get`]).
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn get(&self, p: Point<D>) -> Result<Option<ValueGuard<D, V>>, SfcError> {
        let key = self.table.curve.index_of(p)?;
        let shard = self.table.shard_of_key(key);
        Ok(self.version.shards[shard]
            .get_pinned(key)?
            .map(ValueGuard::new))
    }

    /// Owned-copy point lookup at this epoch.
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    #[deprecated(since = "0.8.0", note = "use `get(p)?.map(|g| g.cloned())` instead")]
    pub fn get_cloned(&self, p: Point<D>) -> Result<Option<V>, SfcError> {
        Ok(self.get(p)?.map(|guard| guard.cloned()))
    }

    /// Streams shard `shard`'s entries at this epoch in ascending key
    /// order — the fixed-epoch form of
    /// [`ShardedTable::persist_shard`], which durable checkpoints walk so
    /// the whole snapshot file is one epoch.
    ///
    /// # Errors
    /// On storage failure reading a disk-resident shard.
    ///
    /// # Panics
    /// If `shard` is out of range.
    pub fn persist_shard(
        &self,
        shard: usize,
        sink: &mut dyn FnMut(u64, &Record<D, V>),
    ) -> Result<(), SfcError> {
        self.version.shards[shard].persist(sink)
    }
}

impl<const D: usize, C, V, B> TableSnapshot<'_, C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send,
    B: Backend<Record<D, V>> + Send + Sync,
{
    /// Answers a rectangle query against this epoch — same decomposition,
    /// sharding, and concurrency as [`ShardedTable::query_rect`], but the
    /// scanned state is this snapshot's version.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn query_rect(&self, q: &RectQuery<D>) -> Result<QueryResult<D, V>, SfcError> {
        let (work, pieces) = self.table.split_query(q)?;
        let (records, per_shard) = self.table.scan_work(&self.version, &work, q, false)?;
        let mut io = IoStats::default();
        for stats in &per_shard {
            io.absorb(*stats);
        }
        Ok(QueryResult {
            records,
            ranges_scanned: pieces,
            io,
            plan: None,
        })
    }
}

/// Applies one write to a shard backend, accumulating the record-count
/// delta and returning the displaced payload — the single op kernel
/// every batch-apply path (serial, parallel, single-shard fallback)
/// shares, so their semantics cannot drift apart.
fn apply_one<const D: usize, V, B: Backend<Record<D, V>>>(
    backend: &mut B,
    key: u64,
    op: BatchOp<D, V>,
    delta: &mut i64,
) -> Option<V> {
    match op {
        BatchOp::Insert(point, value) => {
            backend.insert(key, Record { point, value });
            *delta += 1;
            None
        }
        BatchOp::Update(point, value) => {
            if let Some(rec) = backend.get_mut(key) {
                Some(std::mem::replace(&mut rec.value, value))
            } else {
                backend.insert(key, Record { point, value });
                *delta += 1;
                None
            }
        }
        BatchOp::Delete(_) => {
            let removed = backend.remove(key).map(|rec| rec.value);
            if removed.is_some() {
                *delta -= 1;
            }
            removed
        }
    }
}

/// Scans `ranges` of one shard, appending matches to `records`; one seek
/// per sub-range, pages/hits as reported by the backend. With `filter`,
/// records outside `q` (absorbed gap cells of a plan) are skipped.
fn scan_shard<const D: usize, V: Clone, B: Backend<Record<D, V>>>(
    backend: &B,
    ranges: &[(u64, u64)],
    q: &RectQuery<D>,
    filter: bool,
    records: &mut Vec<Record<D, V>>,
) -> Result<IoStats, SfcError> {
    let before = records.len();
    let stats = backend.scan_ranges(ranges, &mut |_, rec| {
        if filter {
            if q.contains(rec.point) {
                records.push(rec.clone());
            }
        } else {
            debug_assert!(q.contains(rec.point));
            records.push(rec.clone());
        }
    })?;
    Ok(IoStats {
        seeks: ranges.len() as u64,
        pages: stats.pages,
        entries: (records.len() - before) as u64,
        cache_hits: stats.cache_hits,
        real_reads: stats.real_reads,
        real_seeks: stats.real_seeks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SfcTable;
    use onion_core::Onion2D;

    fn dense_records(side: u32) -> Vec<(Point<2>, u32)> {
        let mut records = Vec::new();
        for x in 0..side {
            for y in 0..side {
                records.push((Point::new([x, y]), x * 1000 + y));
            }
        }
        records
    }

    #[test]
    fn sharded_matches_single_table() {
        let side = 16u32;
        let single = SfcTable::build(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            DiskModel::hdd(),
        )
        .unwrap();
        for shards in [1usize, 2, 3, 4, 7] {
            let sharded = ShardedTable::build(
                Onion2D::new(side).unwrap(),
                dense_records(side),
                DiskModel::hdd(),
                shards,
            )
            .unwrap();
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(sharded.len(), single.len());
            for q in [
                RectQuery::new([0, 0], [16, 16]).unwrap(),
                RectQuery::new([2, 3], [5, 4]).unwrap(),
                RectQuery::new([7, 7], [2, 2]).unwrap(),
                RectQuery::new([0, 15], [16, 1]).unwrap(),
            ] {
                let a = single.query_rect(&q, &QueryOptions::default()).unwrap();
                let b = sharded.query_rect(&q, &QueryOptions::default()).unwrap();
                assert_eq!(a.records, b.records, "shards={shards} {q:?}");
                assert!(
                    b.ranges_scanned >= a.ranges_scanned,
                    "splitting can only add ranges"
                );
                assert_eq!(a.io.entries, b.io.entries);
            }
        }
    }

    #[test]
    fn batch_matches_individual_sharded_queries() {
        let side = 16u32;
        let sharded = ShardedTable::build(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            DiskModel::ssd(),
            4,
        )
        .unwrap();
        let queries = [
            RectQuery::new([0, 0], [16, 16]).unwrap(),
            RectQuery::new([5, 1], [4, 9]).unwrap(),
            RectQuery::new([15, 15], [1, 1]).unwrap(),
        ];
        let batch = sharded.query_rect_batch(&queries).unwrap();
        for (q, res) in queries.iter().zip(&batch) {
            let single = sharded.query_rect(q, &QueryOptions::default()).unwrap();
            assert_eq!(res.records, single.records, "{q:?}");
            assert_eq!(res.io, single.io, "{q:?}");
            assert_eq!(res.ranges_scanned, single.ranges_scanned, "{q:?}");
        }
        assert!(sharded
            .query_rect_batch(&[RectQuery::new([10, 10], [10, 10]).unwrap()])
            .is_err());
    }

    #[test]
    fn writes_route_to_owning_shard() {
        let side = 16u32;
        let mut t: ShardedTable<Onion2D, u32, 2> =
            ShardedTable::build(Onion2D::new(side).unwrap(), Vec::new(), DiskModel::ssd(), 4)
                .unwrap();
        assert!(t.is_empty());
        for (p, v) in dense_records(side) {
            t.insert(p, v).unwrap();
        }
        assert_eq!(t.len(), 256);
        let sizes = t.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 256);
        assert_eq!(sizes.len(), 4);
        assert!(
            sizes.iter().all(|&s| s == 64),
            "dense data balances: {sizes:?}"
        );
        let p = Point::new([3, 9]);
        assert_eq!(t.get(p).unwrap().map(|g| g.cloned()), Some(3009));
        assert_eq!(t.get(p).unwrap().map(|g| g.value), Some(3009));
        assert_eq!(t.update(p, 1).unwrap(), Some(3009));
        assert_eq!(t.delete(p).unwrap(), Some(1));
        assert!(t.get(p).unwrap().is_none());
        assert_eq!(t.len(), 255);
        assert!(t.insert(Point::new([16, 0]), 0).is_err());
        // Query reflects the writes, matching a fresh single table.
        let q = RectQuery::new([2, 8], [4, 4]).unwrap();
        let expect: Vec<u32> = SfcTable::build(
            Onion2D::new(side).unwrap(),
            dense_records(side)
                .into_iter()
                .filter(|&(pt, _)| pt != p)
                .collect(),
            DiskModel::ssd(),
        )
        .unwrap()
        .query_rect(&q, &QueryOptions::default())
        .unwrap()
        .records
        .iter()
        .map(|r| r.value)
        .collect();
        let got: Vec<u32> = t
            .query_rect(&q, &QueryOptions::default())
            .unwrap()
            .records
            .iter()
            .map(|r| r.value)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn per_shard_stats_sum_to_merged_io() {
        let side = 32u32;
        let t = ShardedTable::build(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            DiskModel::hdd(),
            5,
        )
        .unwrap();
        let q = RectQuery::new([1, 1], [30, 30]).unwrap();
        let (res, per_shard) = t.query_rect_with_shard_stats(&q).unwrap();
        assert_eq!(per_shard.len(), 5);
        let mut sum = IoStats::default();
        for s in &per_shard {
            sum.absorb(*s);
        }
        assert_eq!(sum, res.io);
        assert!(per_shard.iter().filter(|s| s.seeks > 0).count() > 1);
        // Critical path (max shard) is below the serial sum for a query
        // spanning multiple shards.
        let max = per_shard
            .iter()
            .map(|s| s.time_us(t.model()))
            .fold(0.0f64, f64::max);
        assert!(max < res.io.time_us(t.model()));
    }

    #[test]
    fn apply_batch_matches_sequential_writes() {
        let side = 16u32;
        let mut sequential: ShardedTable<Onion2D, u32, 2> =
            ShardedTable::build(Onion2D::new(side).unwrap(), Vec::new(), DiskModel::ssd(), 4)
                .unwrap();
        let batched: ShardedTable<Onion2D, u32, 2> =
            ShardedTable::build(Onion2D::new(side).unwrap(), Vec::new(), DiskModel::ssd(), 4)
                .unwrap();
        // A mixed batch in adversarial (reverse-curve-ish) submission
        // order, including same-point sequences whose order matters.
        let mut ops: Vec<BatchOp<2, u32>> = Vec::new();
        for x in (0..side).rev() {
            for y in 0..side {
                ops.push(BatchOp::Insert(Point::new([x, y]), x * 100 + y));
            }
        }
        let p = Point::new([5, 5]);
        ops.push(BatchOp::Update(p, 7777));
        ops.push(BatchOp::Delete(p));
        ops.push(BatchOp::Insert(p, 42));
        ops.push(BatchOp::Delete(Point::new([2, 2])));
        ops.push(BatchOp::Delete(Point::new([2, 2]))); // second is a no-op
        let mut expected = Vec::new();
        for op in ops.clone() {
            expected.push(match op {
                BatchOp::Insert(p, v) => {
                    sequential.insert(p, v).unwrap();
                    None
                }
                BatchOp::Update(p, v) => sequential.update(p, v).unwrap(),
                BatchOp::Delete(p) => sequential.delete(p).unwrap(),
            });
        }
        let results = batched.apply_batch(ops).unwrap();
        assert_eq!(results, expected, "displaced payloads in submission order");
        assert_eq!(batched.len(), sequential.len());
        let q = RectQuery::new([0, 0], [side, side]).unwrap();
        assert_eq!(
            batched
                .query_rect(&q, &QueryOptions::default())
                .unwrap()
                .records,
            sequential
                .query_rect(&q, &QueryOptions::default())
                .unwrap()
                .records
        );
    }

    #[test]
    fn apply_batch_validates_before_applying_anything() {
        let t: ShardedTable<Onion2D, u32, 2> =
            ShardedTable::build(Onion2D::new(8).unwrap(), Vec::new(), DiskModel::ssd(), 2).unwrap();
        let ops = vec![
            BatchOp::Insert(Point::new([1, 1]), 1),
            BatchOp::Insert(Point::new([8, 0]), 2), // out of bounds
        ];
        assert!(t.apply_batch(ops).is_err());
        assert!(t.is_empty(), "no partial application");
        assert_eq!(t.apply_batch(Vec::new()).unwrap(), Vec::new());
    }

    #[test]
    fn batched_writes_interleave_with_concurrent_readers() {
        let side = 32u32;
        let t = ShardedTable::build(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            DiskModel::ssd(),
            4,
        )
        .unwrap();
        let q = RectQuery::new([0, 0], [side, side]).unwrap();
        let total = u64::from(side) * u64::from(side);
        std::thread::scope(|s| {
            // Writers toggle a disjoint set of "extra" cells via
            // update/delete pairs; readers continuously scan. Every
            // observed result set size must stay within the toggled band,
            // and per-shard locking must never deadlock or lose records.
            let writer = s.spawn(|| {
                for round in 0..20u32 {
                    let ops: Vec<BatchOp<2, u32>> = (0..side)
                        .map(|x| BatchOp::Update(Point::new([x, x]), 900_000 + round))
                        .collect();
                    t.apply_batch(ops).unwrap();
                }
            });
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..20 {
                        let res = t.query_rect(&q, &QueryOptions::default()).unwrap();
                        assert_eq!(res.records.len() as u64, total, "no torn reads of a shard");
                    }
                });
            }
            writer.join().unwrap();
        });
        // Updates replaced in place: same cardinality, new diagonal values.
        assert_eq!(t.len() as u64, total);
        assert_eq!(
            t.get(Point::new([3, 3])).unwrap().map(|g| g.cloned()),
            Some(900_019)
        );
    }

    #[test]
    fn version_epoch_bumps_once_per_batch_and_window_tracks_it() {
        let mut t = ShardedTable::build(
            Onion2D::new(8).unwrap(),
            dense_records(8),
            DiskModel::ssd(),
            3,
        )
        .unwrap();
        t.set_retention(RetentionPolicy {
            epochs: 2,
            bytes: u64::MAX,
        });
        assert_eq!(t.version_epoch(), 0);
        assert_eq!(t.retained_epochs(), vec![0], "only the live version");
        for e in 1..=4u64 {
            t.apply_batch(vec![BatchOp::Update(Point::new([0, 0]), e as u32)])
                .unwrap();
            assert_eq!(t.version_epoch(), e);
        }
        // Window holds the last `epochs` superseded versions plus the
        // current one, oldest evicted first.
        assert_eq!(t.retained_epochs(), vec![2, 3, 4]);
        assert!(t.snapshot_at(4).is_some(), "current epoch always pinnable");
        assert!(t.snapshot_at(3).is_some());
        assert!(t.snapshot_at(1).is_none(), "evicted");
        assert!(t.snapshot_at(9).is_none(), "never applied");
    }

    #[test]
    fn snapshot_at_answers_the_stamped_epoch() {
        let t = ShardedTable::build(
            Onion2D::new(8).unwrap(),
            dense_records(8),
            DiskModel::ssd(),
            2,
        )
        .unwrap();
        let p = Point::new([5, 5]);
        t.apply_batch(vec![BatchOp::Update(p, 111)]).unwrap();
        t.apply_batch(vec![BatchOp::Update(p, 222)]).unwrap();
        let q = RectQuery::new([5, 5], [1, 1]).unwrap();
        let old = t.snapshot_at(1).expect("retained");
        assert_eq!(old.epoch(), 1);
        assert_eq!(old.query_rect(&q).unwrap().records[0].value, 111);
        assert_eq!(
            t.query_rect(&q, &QueryOptions::default()).unwrap().records[0].value,
            222
        );
        // The live table's history never moves underneath a snapshot.
        t.apply_batch(vec![BatchOp::Delete(p)]).unwrap();
        assert_eq!(old.query_rect(&q).unwrap().records[0].value, 111);
    }

    #[test]
    fn byte_bound_evicts_before_epoch_bound() {
        let mut t = ShardedTable::build(
            Onion2D::new(8).unwrap(),
            dense_records(8),
            DiskModel::ssd(),
            2,
        )
        .unwrap();
        // Far below one 64-record version's estimated footprint: every
        // superseded version is evicted immediately despite `epochs: 8`.
        t.set_retention(RetentionPolicy {
            epochs: 8,
            bytes: 16,
        });
        for e in 1..=3u64 {
            t.apply_batch(vec![BatchOp::Update(Point::new([1, 1]), e as u32)])
                .unwrap();
        }
        assert_eq!(
            t.retained_epochs(),
            vec![3],
            "byte bound drained the window"
        );
        assert!(t.snapshot_at(3).is_some(), "current version unaffected");
    }

    #[test]
    fn planned_queries_return_exact_rows_with_fewer_seeks() {
        let side = 32u32;
        let model = DiskModel {
            page_size: 16,
            seek_us: 8_000.0, // seek-heavy: the planner should coalesce
            transfer_us: 10.0,
        };
        let t = ShardedTable::build_paged(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            model,
            4,
            256,
        )
        .unwrap();
        let planner = Planner::new(model);
        for (lo, len) in [
            ([2u32, 3u32], [9u32, 7u32]),
            ([0, 15], [32, 2]),
            ([7, 7], [3, 3]),
        ] {
            let q = RectQuery::new(lo, len).unwrap();
            let exact = t.query_rect(&q, &QueryOptions::default()).unwrap();
            let planned = t.query_rect(&q, &QueryOptions::planned(&planner)).unwrap();
            let plan = planned
                .plan
                .clone()
                .expect("planned query carries its plan");
            assert_eq!(planned.records, exact.records, "{q:?} {}", plan.explain());
            assert!(plan.ranges.len() <= plan.clusters);
            assert!(
                planned.io.time_us(t.model()) <= exact.io.time_us(t.model()) + 1e-9,
                "planned must not cost more under the model: {}",
                plan.explain()
            );
        }
        assert!(planner.observed() >= 3, "executed plans feed the planner");
        // The explain entry point plans without scanning.
        let q = RectQuery::new([1, 1], [20, 20]).unwrap();
        let observed_before = planner.observed();
        let plan = t.plan_rect(&q, &planner).unwrap();
        assert!(!plan.explain().is_empty());
        assert_eq!(planner.observed(), observed_before);
    }

    #[test]
    fn paged_sharded_table_warms_up() {
        let side = 16u32;
        let model = DiskModel {
            page_size: 16,
            seek_us: 8_000.0,
            transfer_us: 100.0,
        };
        let t = ShardedTable::build_paged(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            model,
            4,
            64,
        )
        .unwrap();
        let q = RectQuery::new([0, 0], [16, 16]).unwrap();
        let cold = t.query_rect(&q, &QueryOptions::default()).unwrap();
        let warm = t.query_rect(&q, &QueryOptions::default()).unwrap();
        assert_eq!(cold.records, warm.records);
        assert!(cold.io.pages > 0);
        assert_eq!(warm.io.pages, 0, "every shard pool warm");
        assert_eq!(warm.io.cache_hits, cold.io.pages);
    }
}
