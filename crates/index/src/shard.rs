//! The sharding layer: `ShardedTable`, a curve-partitioned table whose
//! shards execute queries concurrently.
//!
//! §I of the paper motivates SFC partitioning for distributed spatial data
//! and load balancing: [`partition_universe`](crate::partition_universe)
//! splits the curve into `k` contiguous index ranges, each owned by one
//! worker. `ShardedTable` turns that into a query engine: records are
//! placed in the shard owning their curve key, a rectangle query's cluster
//! ranges are split at shard boundaries, and the per-shard pieces are
//! scanned concurrently under [`std::thread::scope`] — each shard modelling
//! an independent disk/worker, so a query's simulated latency is the
//! *slowest* shard's I/O, not the sum.
//!
//! Skewed data stresses this design exactly as it does real systems: the
//! partitioning balances *cells*, not records, so a hotspot concentrates
//! records (and scan work) in few shards — measurable here via
//! [`ShardedTable::shard_sizes`] and the per-shard stats of
//! [`ShardedTable::query_rect_with_shard_stats`].

use crate::backend::{Backend, MemoryBackend, PagedBackend};
use crate::disk::{DiskModel, IoStats};
use crate::partition::{partition_universe, Partition};
use crate::plan::{Planner, QueryPlan};
use crate::table::{keyed_records, QueryResult, Record};
use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::{RectQuery, ScratchPool};
use std::sync::RwLock;

/// One deferred write against a sharded table, applied through
/// [`ShardedTable::apply_batch`]. Carries the same semantics as the
/// corresponding single-record methods: `Insert` allows duplicates,
/// `Update` replaces-or-inserts, `Delete` removes the first record at the
/// point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOp<const D: usize, V> {
    /// Insert a record (duplicates allowed, like
    /// [`ShardedTable::insert`]).
    Insert(Point<D>, V),
    /// Replace the payload at a point, inserting if vacant (like
    /// [`ShardedTable::update`]).
    Update(Point<D>, V),
    /// Remove the first record at a point (like
    /// [`ShardedTable::delete`]).
    Delete(Point<D>),
}

impl<const D: usize, V> BatchOp<D, V> {
    /// The point this write touches.
    pub fn point(&self) -> Point<D> {
        match self {
            BatchOp::Insert(p, _) | BatchOp::Update(p, _) | BatchOp::Delete(p) => *p,
        }
    }
}

/// A spatial table split into contiguous curve-range shards that are
/// scanned concurrently.
///
/// Shards are ordered by curve range, so concatenating per-shard results in
/// shard order preserves global curve-key order — a sharded query returns
/// exactly what the equivalent [`SfcTable`](crate::SfcTable) returns.
///
/// Every shard sits behind its own [`RwLock`], so the table serves
/// concurrent traffic through `&self`: readers of different shards never
/// contend, readers of the same shard share the lock, and batched writers
/// ([`Self::apply_batch`]) take each shard's write lock only while applying
/// that shard's slice of the batch. The single-record write methods keep
/// their `&mut self` signatures (lock-free via `get_mut`) for callers that
/// own the table exclusively.
pub struct ShardedTable<C, V, const D: usize, B = MemoryBackend<Record<D, V>>> {
    curve: C,
    parts: Vec<Partition>,
    shards: Vec<RwLock<B>>,
    model: DiskModel,
    scratch: ScratchPool<D>,
    /// Total stored records, maintained by every write path so
    /// [`Self::len`]/[`Self::density`] — called per planned query — never
    /// sweep the shard locks (a query would otherwise stall behind epoch
    /// applies on shards it will not even scan).
    records: std::sync::atomic::AtomicU64,
    // `V` only occurs inside `B` (as `Backend<Record<D, V>>`); the `fn`
    // wrapper keeps the marker from affecting auto traits or variance.
    _values: std::marker::PhantomData<fn() -> V>,
}

/// Work split of one query: for each shard (by position in `parts`), the
/// sub-ranges of the query's clusters that fall inside it.
type ShardWork = Vec<Vec<(u64, u64)>>;

impl<const D: usize, C, V> ShardedTable<C, V, D>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
{
    /// Builds a sharded table over `curve` with `shard_count` shards
    /// (in-memory backends), placing each record in the shard owning its
    /// curve key.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn build(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        shard_count: usize,
    ) -> Result<Self, SfcError> {
        Self::build_with(curve, records, model, shard_count, |chunk, _| {
            MemoryBackend::bulk_load(chunk)
        })
    }
}

impl<const D: usize, C, V> ShardedTable<C, V, D, PagedBackend<Record<D, V>>>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
{
    /// Builds a sharded table whose shards each front their pages with an
    /// LRU buffer pool of `pool_pages` pages (see
    /// [`SfcTable::build_paged`](crate::SfcTable::build_paged)).
    ///
    /// # Errors
    /// If any point lies outside the curve's universe.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn build_paged(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        shard_count: usize,
        pool_pages: usize,
    ) -> Result<Self, SfcError> {
        Self::build_with(curve, records, model, shard_count, |chunk, model| {
            PagedBackend::bulk_load(chunk, model, pool_pages)
        })
    }
}

impl<const D: usize, C, V, B> ShardedTable<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
    B: Backend<Record<D, V>>,
{
    /// Generic build: keys and sorts the records once, cuts them at the
    /// partition boundaries of [`partition_universe`], and bulk-loads each
    /// shard's chunk through `make_backend`.
    fn build_with(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        shard_count: usize,
        make_backend: impl Fn(Vec<(u64, Record<D, V>)>, DiskModel) -> B,
    ) -> Result<Self, SfcError> {
        assert!(shard_count >= 1, "need at least one shard");
        let parts = partition_universe(&curve, shard_count);
        let mut keyed = keyed_records(&curve, records)?;
        let total = keyed.len() as u64;
        let mut shards = Vec::with_capacity(parts.len());
        // `keyed` is sorted, so each shard's records are a prefix of the
        // remainder: split it off partition by partition.
        for part in parts.iter().rev() {
            let cut = keyed.partition_point(|&(k, _)| k < part.lo);
            shards.push(RwLock::new(make_backend(keyed.split_off(cut), model)));
        }
        shards.reverse();
        debug_assert!(keyed.is_empty());
        Ok(ShardedTable {
            curve,
            parts,
            shards,
            model,
            scratch: ScratchPool::new(),
            records: std::sync::atomic::AtomicU64::new(total),
            _values: std::marker::PhantomData,
        })
    }

    /// The curve ordering this table.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// The disk cost model used for simulated timings (per shard).
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The curve-range partitions backing the shards.
    pub fn partitions(&self) -> &[Partition] {
        &self.parts
    }

    /// Records per shard — the load-balance view ("imbalance" in the sense
    /// of [`PartitionMetrics`](crate::PartitionMetrics), but record-weighted
    /// rather than cell-weighted, which is what skewed data distorts).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| read_shard(s).len()).collect()
    }

    /// Total number of stored records (a lock-free counter maintained by
    /// every write path — reading it never touches the shard locks).
    pub fn len(&self) -> usize {
        self.records.load(std::sync::atomic::Ordering::Relaxed) as usize
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record density: stored records per curve cell, the planner's
    /// expected yield of a scanned key span.
    pub fn density(&self) -> f64 {
        crate::plan::record_density(self.len(), self.curve.universe().cell_count())
    }

    /// The shard (by position) owning curve key `key`.
    fn shard_of_key(&self, key: u64) -> usize {
        let pos = self.parts.partition_point(|part| part.hi < key);
        // `partition_universe` covers every curve key and all keys come
        // from validated points, so this is unreachable today — but guard
        // in every build profile with a clear message (the `owner_of`
        // lesson: a vanished debug_assert leaves an opaque index panic) in
        // case a future constructor accepts caller-supplied partitions.
        assert!(
            pos < self.parts.len() && self.parts[pos].lo <= key,
            "curve key {key} is not covered by the table's {} partition(s)",
            self.parts.len()
        );
        pos
    }

    /// Inserts a record into the shard owning its curve key.
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn insert(&mut self, point: Point<D>, value: V) -> Result<(), SfcError> {
        let key = self.curve.index_of(point)?;
        let shard = self.shard_of_key(key);
        write_shard_mut(&mut self.shards[shard]).insert(key, Record { point, value });
        self.add_records(1);
        Ok(())
    }

    /// Removes the record at `point`, returning its payload.
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn delete(&mut self, point: Point<D>) -> Result<Option<V>, SfcError> {
        let key = self.curve.index_of(point)?;
        let shard = self.shard_of_key(key);
        let removed = write_shard_mut(&mut self.shards[shard])
            .remove(key)
            .map(|rec| rec.value);
        if removed.is_some() {
            self.add_records(-1);
        }
        Ok(removed)
    }

    /// Replaces the payload at `point` in place, returning the previous
    /// one; inserts (and returns `None`) if the cell is vacant.
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn update(&mut self, point: Point<D>, value: V) -> Result<Option<V>, SfcError> {
        let key = self.curve.index_of(point)?;
        let shard = self.shard_of_key(key);
        let backend = write_shard_mut(&mut self.shards[shard]);
        if let Some(rec) = backend.get_mut(key) {
            Ok(Some(std::mem::replace(&mut rec.value, value)))
        } else {
            backend.insert(key, Record { point, value });
            self.add_records(1);
            Ok(None)
        }
    }

    /// Adjusts the lock-free record counter by `delta`.
    fn add_records(&self, delta: i64) {
        use std::sync::atomic::Ordering;
        if delta >= 0 {
            self.records.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.records
                .fetch_sub(delta.unsigned_abs(), Ordering::Relaxed);
        }
    }

    /// Validates and keys a batch (one [`SpaceFillingCurve::fill_indices`]
    /// call) and stable-sorts it into curve order, returning the per-op
    /// keys and the sorted submission-index permutation — the shared
    /// front half of every batch-apply path. Stable sort: ops on the
    /// same key keep their submission order.
    fn key_batch(&self, ops: &[BatchOp<D, V>]) -> Result<(Vec<u64>, Vec<usize>), SfcError> {
        let universe = self.curve.universe();
        let points: Vec<Point<D>> = ops.iter().map(BatchOp::point).collect();
        for p in &points {
            if !universe.contains(*p) {
                return Err(SfcError::PointOutOfBounds {
                    point: p.to_string(),
                    side: universe.side(),
                });
            }
        }
        let mut keys: Vec<u64> = Vec::with_capacity(points.len());
        self.curve.fill_indices(&points, &mut keys);
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        Ok((keys, order))
    }

    /// Applies a batch of writes through `&self` on the single-threaded
    /// reference path: validates and keys every point with one
    /// [`SpaceFillingCurve::fill_indices`] call, stably sorts the batch
    /// into curve order, and applies each shard's contiguous run under
    /// that shard's write lock, one shard after another — in place via
    /// the sorted index permutation, with no per-shard staging.
    ///
    /// [`Self::apply_batch`] produces byte-identical state and identical
    /// results while applying the per-shard runs concurrently; this
    /// serial form is the semantic reference the equivalence proptests
    /// and the `engine/apply_parallel` bench compare against, and the
    /// path `apply_batch` itself takes for small batches.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe (checked before
    /// anything is applied).
    pub fn apply_batch_serial(&self, ops: Vec<BatchOp<D, V>>) -> Result<Vec<Option<V>>, SfcError> {
        let (keys, order) = self.key_batch(&ops)?;
        let mut slots: Vec<Option<BatchOp<D, V>>> = ops.into_iter().map(Some).collect();
        let mut results: Vec<Option<V>> = Vec::new();
        results.resize_with(slots.len(), || None);
        let mut at = 0usize;
        let mut delta = 0i64;
        while at < order.len() {
            let shard = self.shard_of_key(keys[order[at]]);
            let end = at
                + order[at..]
                    .iter()
                    .take_while(|&&i| keys[i] <= self.parts[shard].hi)
                    .count();
            let mut backend = self.shards[shard]
                .write()
                .expect("shard poisoned by a panicked writer");
            for pos in at..end {
                // The permutation visits `slots` in curve order, not
                // submission order — a data-dependent stride the hardware
                // prefetcher cannot follow. Hint a few ops ahead so each
                // slot's line arrives while earlier ops apply.
                if let Some(&ahead) = order.get(pos + APPLY_PREFETCH_DISTANCE) {
                    crate::prefetch::prefetch_read(&slots[ahead]);
                }
                let i = order[pos];
                let op = slots[i].take().expect("each op applied once");
                results[i] = apply_one(&mut *backend, keys[i], op, &mut delta);
            }
            at = end;
        }
        self.add_records(delta);
        Ok(results)
    }

    /// Streams shard `shard`'s entries in ascending key order through the
    /// backend's [`Backend::persist`] hook — the building block of
    /// curve-ordered snapshots ([`write_snapshot`](crate::write_snapshot)
    /// walks shards in partition order, so the concatenation of these
    /// streams is the whole table in curve-key order).
    ///
    /// # Panics
    /// If `shard` is out of range.
    pub fn persist_shard(&self, shard: usize, sink: &mut dyn FnMut(u64, &Record<D, V>)) {
        read_shard(&self.shards[shard]).persist(sink);
    }

    /// Replaces the table's entire contents with `entries` — keyed
    /// records sorted ascending by curve key, as produced by
    /// [`read_snapshot`](crate::read_snapshot) or by concatenating
    /// [`Self::persist_shard`] streams. The entries are re-cut at *this*
    /// table's partition boundaries and handed to each shard's
    /// [`Backend::restore`], so a snapshot taken at one shard count
    /// restores into any other: same committed state, identical
    /// [`Self::query_rect`] answers, whatever the layout.
    ///
    /// Keys are trusted to match this table's curve (they are validated
    /// against the universe, but not re-derived from the points — the
    /// durable layer guarantees curve identity by construction).
    ///
    /// # Errors
    /// If any key lies outside the curve's universe or the entries are
    /// not sorted (a snapshot from a different universe, a foreign
    /// format revision, or corruption the checksum missed) — recovery
    /// failures are reported, never panicked, so a durable engine's
    /// `open` can surface them.
    pub fn restore_entries(&self, entries: Vec<(u64, Record<D, V>)>) -> Result<(), SfcError> {
        let cells = self.curve.universe().cell_count();
        if let Some(&(key, _)) = entries.iter().find(|&&(k, _)| k >= cells) {
            return Err(SfcError::IndexOutOfBounds { index: key, cells });
        }
        if !entries.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err(SfcError::Storage {
                context: "restoring table: snapshot entries are not in curve-key order".into(),
            });
        }
        let total = entries.len() as u64;
        let mut remainder = entries;
        // Cut the sorted entries at partition boundaries, back to front
        // (mirroring `build_with`), restoring each shard under its write
        // lock. Readers see each shard flip atomically; a scan racing the
        // restore may straddle old and new shards, exactly like an epoch
        // apply — recovery quiesces by construction (the table is not yet
        // shared), so this only matters for ad-hoc online restores.
        for (shard, part) in self.parts.iter().enumerate().rev() {
            let cut = remainder.partition_point(|&(k, _)| k < part.lo);
            let chunk = remainder.split_off(cut);
            self.shards[shard]
                .write()
                .expect("shard poisoned by a panicked writer")
                .restore(chunk);
        }
        debug_assert!(remainder.is_empty());
        self.records
            .store(total, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Point lookup (routed to the owning shard; no threads involved).
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn get(&self, p: Point<D>) -> Result<Option<V>, SfcError>
    where
        V: Clone,
    {
        let key = self.curve.index_of(p)?;
        let shard = self.shard_of_key(key);
        Ok(read_shard(&self.shards[shard])
            .get(key)
            .map(|r| r.value.clone()))
    }

    /// Splits the cluster ranges of `q` at shard boundaries. Returns the
    /// per-shard sub-range lists and the total sub-range count.
    fn split_query(&self, q: &RectQuery<D>) -> Result<(ShardWork, u64), SfcError> {
        self.check_fits(q)?;
        let mut scratch = self.scratch.checkout();
        let ranges = scratch.ranges_of(&self.curve, q);
        Ok(self.split_ranges(ranges))
    }

    /// Splits arbitrary sorted ranges (a plan's, or a full decomposition's)
    /// at shard boundaries.
    fn split_ranges(&self, ranges: &[(u64, u64)]) -> (ShardWork, u64) {
        let mut work: ShardWork = vec![Vec::new(); self.shards.len()];
        let mut pieces = 0u64;
        for &(mut lo, hi) in ranges {
            let mut shard = self.shard_of_key(lo);
            loop {
                let cut = self.parts[shard].hi.min(hi);
                work[shard].push((lo, cut));
                pieces += 1;
                if cut == hi {
                    break;
                }
                lo = cut + 1;
                shard += 1;
            }
        }
        (work, pieces)
    }

    fn check_fits(&self, q: &RectQuery<D>) -> Result<(), SfcError> {
        let side = self.curve.universe().side();
        if !q.fits_in(side) {
            return Err(SfcError::PointOutOfBounds {
                point: Point::new(q.hi()).to_string(),
                side,
            });
        }
        Ok(())
    }
}

/// How many permutation steps ahead the batch-apply loops hint `slots`
/// entries into cache (see [`crate::prefetch`]): far enough to cover an
/// L2 miss under the loop's per-op work, near enough that hinted lines
/// survive until use.
const APPLY_PREFETCH_DISTANCE: usize = 8;

/// Batches below this many ops always take the serial apply path: their
/// per-shard slices are too small to amortize thread spawns (an epoch of
/// a few hundred ops applies in tens of microseconds — comparable to
/// starting one thread). Recovery replay and bulk loads run far above it.
const PARALLEL_APPLY_MIN_OPS: usize = 1024;

/// Whether this host can actually run shard workers concurrently. On a
/// single-core machine the parallel apply is pure spawn overhead (the
/// workers serialize anyway), so `apply_batch` stays on the serial path
/// there — behavior is identical either way, only the schedule differs.
fn host_has_parallelism() -> bool {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }) > 1
}

impl<const D: usize, C, V, B> ShardedTable<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send,
    B: Backend<Record<D, V>> + Send + Sync,
{
    /// Applies a batch of writes through `&self`: validates and keys every
    /// point with one [`SpaceFillingCurve::fill_indices`] call, stably
    /// sorts the batch into curve order, and applies each shard's
    /// contiguous slice under that shard's write lock — so the B+-trees
    /// see sorted bulk mutations instead of random single inserts, and
    /// readers of untouched shards are never blocked.
    ///
    /// Large batches (1024+ ops touching more than one shard, on hosts
    /// with more than one core) apply their per-shard slices
    /// **concurrently** via [`Self::apply_batch_parallel`]: the slices
    /// are disjoint by construction and each worker takes only its own
    /// shard's write lock, so the parallel apply is observationally
    /// identical to [`Self::apply_batch_serial`] — same displaced
    /// payloads, same final state, same per-shard atomicity — with the
    /// epoch's critical path shrunk to the slowest shard. Smaller
    /// batches (and single-core hosts) stay on the serial path (the
    /// equivalence proptests pin both).
    ///
    /// Returns the displaced payloads in **submission order** (`None` for
    /// inserts and for deletes/updates of vacant cells). Ops on the same
    /// point apply in submission order; no write is applied if any point
    /// is invalid.
    ///
    /// This is the write entry point the epoch-batching serving layer
    /// (`sfc-engine`) drives — both for live epochs and for recovery
    /// replay; interleaved readers see each shard atomically switch from
    /// pre-batch to post-batch state.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe (checked before
    /// anything is applied).
    pub fn apply_batch(&self, ops: Vec<BatchOp<D, V>>) -> Result<Vec<Option<V>>, SfcError> {
        let total = ops.len();
        if total < PARALLEL_APPLY_MIN_OPS || !host_has_parallelism() {
            return self.apply_batch_serial(ops);
        }
        self.apply_batch_parallel(ops)
    }

    /// The always-threaded form of [`Self::apply_batch`]: per-shard
    /// slices apply concurrently under [`std::thread::scope`] regardless
    /// of batch size or host core count (a batch confined to one shard
    /// still applies inline — threads would buy nothing). Observationally
    /// identical to [`Self::apply_batch_serial`]; the equivalence
    /// proptests drive this form directly so the threaded path is pinned
    /// even where `apply_batch`'s heuristics would choose the serial one.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe (checked before
    /// anything is applied).
    pub fn apply_batch_parallel(
        &self,
        ops: Vec<BatchOp<D, V>>,
    ) -> Result<Vec<Option<V>>, SfcError> {
        let total = ops.len();
        let (keys, order) = self.key_batch(&ops)?;
        // Cut the sorted run at shard boundaries into owned per-shard
        // work lists of `(submission index, key, op)`.
        type ShardSlice<const D: usize, V> = (usize, Vec<(usize, u64, BatchOp<D, V>)>);
        let mut slots: Vec<Option<BatchOp<D, V>>> = ops.into_iter().map(Some).collect();
        let mut slices: Vec<ShardSlice<D, V>> = Vec::new();
        let mut at = 0usize;
        while at < order.len() {
            let shard = self.shard_of_key(keys[order[at]]);
            let end = at
                + order[at..]
                    .iter()
                    .take_while(|&&i| keys[i] <= self.parts[shard].hi)
                    .count();
            let slice: Vec<(usize, u64, BatchOp<D, V>)> = order[at..end]
                .iter()
                .enumerate()
                .map(|(n, &i)| {
                    // Same permutation-lookahead hint as the serial path:
                    // the gather walks `slots` in curve order.
                    if let Some(&ahead) = order.get(at + n + APPLY_PREFETCH_DISTANCE) {
                        crate::prefetch::prefetch_read(&slots[ahead]);
                    }
                    (i, keys[i], slots[i].take().expect("each op staged once"))
                })
                .collect();
            slices.push((shard, slice));
            at = end;
        }
        let mut results: Vec<Option<V>> = Vec::new();
        results.resize_with(total, || None);
        let mut delta = 0i64;
        if slices.len() <= 1 {
            // One shard owns the whole run: threads buy nothing.
            for (shard, slice) in slices {
                let mut backend = self.shards[shard]
                    .write()
                    .expect("shard poisoned by a panicked writer");
                for (i, key, op) in slice {
                    results[i] = apply_one(&mut *backend, key, op, &mut delta);
                }
            }
            self.add_records(delta);
            return Ok(results);
        }
        // Per-shard slices are disjoint in both submission indices and
        // backends, so workers share nothing but the table reference.
        type ShardChunk<V> = (Vec<(usize, Option<V>)>, i64);
        let chunks: Vec<ShardChunk<V>> = std::thread::scope(|s| {
            let handles: Vec<_> = slices
                .into_iter()
                .map(|(shard, slice)| {
                    let lock = &self.shards[shard];
                    s.spawn(move || {
                        let mut backend =
                            lock.write().expect("shard poisoned by a panicked writer");
                        let mut local_delta = 0i64;
                        let pairs: Vec<(usize, Option<V>)> = slice
                            .into_iter()
                            .map(|(i, key, op)| {
                                (i, apply_one(&mut *backend, key, op, &mut local_delta))
                            })
                            .collect();
                        (pairs, local_delta)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard apply worker panicked"))
                .collect()
        });
        for (pairs, d) in chunks {
            delta += d;
            for (i, displaced) in pairs {
                results[i] = displaced;
            }
        }
        self.add_records(delta);
        Ok(results)
    }

    /// Answers a rectangle query: decomposes it into cluster ranges, splits
    /// them at shard boundaries, and scans the shards concurrently
    /// ([`std::thread::scope`]), merging records in shard order — which is
    /// curve-key order, so results match the unsharded table exactly.
    ///
    /// The merged [`IoStats`] *sum* the shards' I/O (total work); per-shard
    /// breakdowns — from which a parallel critical path `max(time_us)` can
    /// be computed — come from [`Self::query_rect_with_shard_stats`].
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn query_rect(&self, q: &RectQuery<D>) -> Result<QueryResult<D, V>, SfcError> {
        let (result, _) = self.query_rect_with_shard_stats(q)?;
        Ok(result)
    }

    /// Like [`Self::query_rect`], but also returns each shard's own
    /// [`IoStats`] (indexed by shard, zeros for untouched shards) — the
    /// load-balance view: with one simulated disk per shard, the query's
    /// parallel latency is the maximum per-shard `time_us`, and the gap
    /// between that maximum and the mean is the skew the workload induced.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn query_rect_with_shard_stats(
        &self,
        q: &RectQuery<D>,
    ) -> Result<(QueryResult<D, V>, Vec<IoStats>), SfcError> {
        let (work, pieces) = self.split_query(q)?;
        let (records, per_shard) = self.scan_work(&work, q, false);
        let mut io = IoStats::default();
        for stats in &per_shard {
            io.absorb(*stats);
        }
        Ok((
            QueryResult {
                records,
                ranges_scanned: pieces,
                io,
            },
            per_shard,
        ))
    }

    /// Plans a rectangle query without executing it (the `EXPLAIN` entry
    /// point): the plan is made on the *global* decomposition, before any
    /// shard-boundary splitting, so its budget reflects the query's true
    /// clustering.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn plan_rect(&self, q: &RectQuery<D>, planner: &Planner) -> Result<QueryPlan, SfcError> {
        self.check_fits(q)?;
        let mut scratch = self.scratch.checkout();
        let full = scratch.ranges_of(&self.curve, q);
        Ok(planner.plan_ranges(full, self.density()))
    }

    /// Answers a rectangle query through the adaptive planner: plans the
    /// decomposition budget globally, splits the planned ranges at shard
    /// boundaries, scans concurrently (filtering out records from absorbed
    /// gap cells), and feeds both the merged [`IoStats`] and the per-shard
    /// breakdown back into the planner (hit rate and latency skew).
    ///
    /// Returns the result and the plan; the rows are always exactly
    /// [`Self::query_rect`]'s, whatever budget the planner chose.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn query_rect_planned(
        &self,
        q: &RectQuery<D>,
        planner: &Planner,
    ) -> Result<(QueryResult<D, V>, QueryPlan), SfcError> {
        let plan = self.plan_rect(q, planner)?;
        let (work, pieces) = self.split_ranges(&plan.ranges);
        let (records, per_shard) = self.scan_work(&work, q, true);
        let mut io = IoStats::default();
        for stats in &per_shard {
            io.absorb(*stats);
        }
        planner.observe(&io);
        planner.observe_shards(&per_shard);
        Ok((
            QueryResult {
                records,
                ranges_scanned: pieces,
                io,
            },
            plan,
        ))
    }

    /// Scans a per-shard worklist, inline for a single involved shard and
    /// under [`std::thread::scope`] otherwise. With `filter`, records
    /// outside `q` are dropped (plans absorb gap cells); without it they
    /// are debug-asserted impossible (exact decompositions never scan
    /// outside the query).
    fn scan_work(
        &self,
        work: &ShardWork,
        q: &RectQuery<D>,
        filter: bool,
    ) -> (Vec<Record<D, V>>, Vec<IoStats>) {
        let mut per_shard = vec![IoStats::default(); self.shards.len()];
        let mut records = Vec::new();
        let involved = work.iter().filter(|w| !w.is_empty()).count();
        if involved <= 1 {
            // One shard (or none): scan inline, no thread overhead.
            for (shard, ranges) in work.iter().enumerate() {
                if !ranges.is_empty() {
                    let backend = read_shard(&self.shards[shard]);
                    per_shard[shard] = scan_shard(&*backend, ranges, q, filter, &mut records);
                }
            }
        } else {
            let chunks: Vec<(usize, Vec<Record<D, V>>, IoStats)> = std::thread::scope(|s| {
                let handles: Vec<_> = work
                    .iter()
                    .enumerate()
                    .filter(|(_, ranges)| !ranges.is_empty())
                    .map(|(shard, ranges)| {
                        let lock = &self.shards[shard];
                        s.spawn(move || {
                            let backend = read_shard(lock);
                            let mut recs = Vec::new();
                            let stats = scan_shard(&*backend, ranges, q, filter, &mut recs);
                            (shard, recs, stats)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            // Handles were spawned in shard order, so concatenation keeps
            // global curve-key order.
            for (shard, recs, stats) in chunks {
                per_shard[shard] = stats;
                records.extend(recs);
            }
        }
        (records, per_shard)
    }

    /// Answers a batch of rectangle queries with one thread scope: each
    /// shard worker processes its sub-ranges of *every* query, so the
    /// per-query spawn cost is amortized across the batch — the
    /// concurrency analogue of
    /// [`SfcTable::query_rect_batch`](crate::SfcTable::query_rect_batch).
    ///
    /// # Errors
    /// If any query does not fit inside the universe.
    pub fn query_rect_batch(
        &self,
        queries: &[RectQuery<D>],
    ) -> Result<Vec<QueryResult<D, V>>, SfcError> {
        // Split every query first so errors surface before any scan work.
        let mut splits = Vec::with_capacity(queries.len());
        for q in queries {
            splits.push(self.split_query(q)?);
        }
        // Transpose into per-shard worklists of (query, lo, hi).
        let mut shard_work: Vec<Vec<(usize, u64, u64)>> = vec![Vec::new(); self.shards.len()];
        for (qi, (work, _)) in splits.iter().enumerate() {
            for (shard, ranges) in work.iter().enumerate() {
                for &(lo, hi) in ranges {
                    shard_work[shard].push((qi, lo, hi));
                }
            }
        }
        type Chunk<const D: usize, V> = (usize, Vec<(usize, Vec<Record<D, V>>, IoStats)>);
        let chunks: Vec<Chunk<D, V>> = std::thread::scope(|s| {
            let handles: Vec<_> = shard_work
                .iter()
                .enumerate()
                .filter(|(_, wl)| !wl.is_empty())
                .map(|(shard, worklist)| {
                    let lock = &self.shards[shard];
                    s.spawn(move || {
                        let backend = read_shard(lock);
                        let mut out: Vec<(usize, Vec<Record<D, V>>, IoStats)> = Vec::new();
                        for &(qi, lo, hi) in worklist {
                            if out.last().is_none_or(|&(last_qi, _, _)| last_qi != qi) {
                                out.push((qi, Vec::new(), IoStats::default()));
                            }
                            let (_, recs, io) = out.last_mut().expect("just pushed");
                            let stats = backend.scan(lo, hi, &mut |_, rec| recs.push(rec.clone()));
                            io.seeks += 1;
                            io.pages += stats.pages;
                            io.cache_hits += stats.cache_hits;
                        }
                        for (_, recs, io) in &mut out {
                            io.entries = recs.len() as u64;
                        }
                        (shard, out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut results: Vec<QueryResult<D, V>> = splits
            .iter()
            .map(|&(_, pieces)| QueryResult {
                records: Vec::new(),
                ranges_scanned: pieces,
                io: IoStats::default(),
            })
            .collect();
        // Chunks arrive in shard order (spawn order), and within a shard in
        // query order, so per-query extension preserves curve-key order.
        for (_, chunk) in chunks {
            for (qi, recs, io) in chunk {
                results[qi].records.extend(recs);
                results[qi].io.absorb(io);
            }
        }
        Ok(results)
    }
}

/// Applies one write to a shard backend, accumulating the record-count
/// delta and returning the displaced payload — the single op kernel
/// every batch-apply path (serial, parallel, single-shard fallback)
/// shares, so their semantics cannot drift apart.
fn apply_one<const D: usize, V, B: Backend<Record<D, V>>>(
    backend: &mut B,
    key: u64,
    op: BatchOp<D, V>,
    delta: &mut i64,
) -> Option<V> {
    match op {
        BatchOp::Insert(point, value) => {
            backend.insert(key, Record { point, value });
            *delta += 1;
            None
        }
        BatchOp::Update(point, value) => {
            if let Some(rec) = backend.get_mut(key) {
                Some(std::mem::replace(&mut rec.value, value))
            } else {
                backend.insert(key, Record { point, value });
                *delta += 1;
                None
            }
        }
        BatchOp::Delete(_) => {
            let removed = backend.remove(key).map(|rec| rec.value);
            if removed.is_some() {
                *delta -= 1;
            }
            removed
        }
    }
}

/// Scans `ranges` of one shard, appending matches to `records`; one seek
/// per sub-range, pages/hits as reported by the backend. With `filter`,
/// records outside `q` (absorbed gap cells of a plan) are skipped.
fn scan_shard<const D: usize, V: Clone, B: Backend<Record<D, V>>>(
    backend: &B,
    ranges: &[(u64, u64)],
    q: &RectQuery<D>,
    filter: bool,
    records: &mut Vec<Record<D, V>>,
) -> IoStats {
    let before = records.len();
    let stats = backend.scan_ranges(ranges, &mut |_, rec| {
        if filter {
            if q.contains(rec.point) {
                records.push(rec.clone());
            }
        } else {
            debug_assert!(q.contains(rec.point));
            records.push(rec.clone());
        }
    });
    IoStats {
        seeks: ranges.len() as u64,
        pages: stats.pages,
        entries: (records.len() - before) as u64,
        cache_hits: stats.cache_hits,
    }
}

/// Takes a shard's read lock. Poisoning propagates as a panic
/// *deliberately* (fail-stop): a writer that panicked mid-`apply_batch`
/// may have left this shard's tree half-mutated, and serving reads from a
/// possibly-corrupt shard is worse than refusing.
fn read_shard<B>(lock: &RwLock<B>) -> std::sync::RwLockReadGuard<'_, B> {
    lock.read().expect("shard poisoned by a panicked writer")
}

/// Exclusive access to a shard through `&mut self` — no locking needed,
/// the borrow checker already guarantees uniqueness. Same fail-stop
/// poisoning policy as [`read_shard`].
fn write_shard_mut<B>(lock: &mut RwLock<B>) -> &mut B {
    lock.get_mut().expect("shard poisoned by a panicked writer")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SfcTable;
    use onion_core::Onion2D;

    fn dense_records(side: u32) -> Vec<(Point<2>, u32)> {
        let mut records = Vec::new();
        for x in 0..side {
            for y in 0..side {
                records.push((Point::new([x, y]), x * 1000 + y));
            }
        }
        records
    }

    #[test]
    fn sharded_matches_single_table() {
        let side = 16u32;
        let single = SfcTable::build(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            DiskModel::hdd(),
        )
        .unwrap();
        for shards in [1usize, 2, 3, 4, 7] {
            let sharded = ShardedTable::build(
                Onion2D::new(side).unwrap(),
                dense_records(side),
                DiskModel::hdd(),
                shards,
            )
            .unwrap();
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(sharded.len(), single.len());
            for q in [
                RectQuery::new([0, 0], [16, 16]).unwrap(),
                RectQuery::new([2, 3], [5, 4]).unwrap(),
                RectQuery::new([7, 7], [2, 2]).unwrap(),
                RectQuery::new([0, 15], [16, 1]).unwrap(),
            ] {
                let a = single.query_rect(&q).unwrap();
                let b = sharded.query_rect(&q).unwrap();
                assert_eq!(a.records, b.records, "shards={shards} {q:?}");
                assert!(
                    b.ranges_scanned >= a.ranges_scanned,
                    "splitting can only add ranges"
                );
                assert_eq!(a.io.entries, b.io.entries);
            }
        }
    }

    #[test]
    fn batch_matches_individual_sharded_queries() {
        let side = 16u32;
        let sharded = ShardedTable::build(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            DiskModel::ssd(),
            4,
        )
        .unwrap();
        let queries = [
            RectQuery::new([0, 0], [16, 16]).unwrap(),
            RectQuery::new([5, 1], [4, 9]).unwrap(),
            RectQuery::new([15, 15], [1, 1]).unwrap(),
        ];
        let batch = sharded.query_rect_batch(&queries).unwrap();
        for (q, res) in queries.iter().zip(&batch) {
            let single = sharded.query_rect(q).unwrap();
            assert_eq!(res.records, single.records, "{q:?}");
            assert_eq!(res.io, single.io, "{q:?}");
            assert_eq!(res.ranges_scanned, single.ranges_scanned, "{q:?}");
        }
        assert!(sharded
            .query_rect_batch(&[RectQuery::new([10, 10], [10, 10]).unwrap()])
            .is_err());
    }

    #[test]
    fn writes_route_to_owning_shard() {
        let side = 16u32;
        let mut t: ShardedTable<Onion2D, u32, 2> =
            ShardedTable::build(Onion2D::new(side).unwrap(), Vec::new(), DiskModel::ssd(), 4)
                .unwrap();
        assert!(t.is_empty());
        for (p, v) in dense_records(side) {
            t.insert(p, v).unwrap();
        }
        assert_eq!(t.len(), 256);
        let sizes = t.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 256);
        assert_eq!(sizes.len(), 4);
        assert!(
            sizes.iter().all(|&s| s == 64),
            "dense data balances: {sizes:?}"
        );
        let p = Point::new([3, 9]);
        assert_eq!(t.get(p).unwrap(), Some(3009));
        assert_eq!(t.update(p, 1).unwrap(), Some(3009));
        assert_eq!(t.delete(p).unwrap(), Some(1));
        assert_eq!(t.get(p).unwrap(), None);
        assert_eq!(t.len(), 255);
        assert!(t.insert(Point::new([16, 0]), 0).is_err());
        // Query reflects the writes, matching a fresh single table.
        let q = RectQuery::new([2, 8], [4, 4]).unwrap();
        let expect: Vec<u32> = SfcTable::build(
            Onion2D::new(side).unwrap(),
            dense_records(side)
                .into_iter()
                .filter(|&(pt, _)| pt != p)
                .collect(),
            DiskModel::ssd(),
        )
        .unwrap()
        .query_rect(&q)
        .unwrap()
        .records
        .iter()
        .map(|r| r.value)
        .collect();
        let got: Vec<u32> = t
            .query_rect(&q)
            .unwrap()
            .records
            .iter()
            .map(|r| r.value)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn per_shard_stats_sum_to_merged_io() {
        let side = 32u32;
        let t = ShardedTable::build(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            DiskModel::hdd(),
            5,
        )
        .unwrap();
        let q = RectQuery::new([1, 1], [30, 30]).unwrap();
        let (res, per_shard) = t.query_rect_with_shard_stats(&q).unwrap();
        assert_eq!(per_shard.len(), 5);
        let mut sum = IoStats::default();
        for s in &per_shard {
            sum.absorb(*s);
        }
        assert_eq!(sum, res.io);
        assert!(per_shard.iter().filter(|s| s.seeks > 0).count() > 1);
        // Critical path (max shard) is below the serial sum for a query
        // spanning multiple shards.
        let max = per_shard
            .iter()
            .map(|s| s.time_us(t.model()))
            .fold(0.0f64, f64::max);
        assert!(max < res.io.time_us(t.model()));
    }

    #[test]
    fn apply_batch_matches_sequential_writes() {
        let side = 16u32;
        let mut sequential: ShardedTable<Onion2D, u32, 2> =
            ShardedTable::build(Onion2D::new(side).unwrap(), Vec::new(), DiskModel::ssd(), 4)
                .unwrap();
        let batched: ShardedTable<Onion2D, u32, 2> =
            ShardedTable::build(Onion2D::new(side).unwrap(), Vec::new(), DiskModel::ssd(), 4)
                .unwrap();
        // A mixed batch in adversarial (reverse-curve-ish) submission
        // order, including same-point sequences whose order matters.
        let mut ops: Vec<BatchOp<2, u32>> = Vec::new();
        for x in (0..side).rev() {
            for y in 0..side {
                ops.push(BatchOp::Insert(Point::new([x, y]), x * 100 + y));
            }
        }
        let p = Point::new([5, 5]);
        ops.push(BatchOp::Update(p, 7777));
        ops.push(BatchOp::Delete(p));
        ops.push(BatchOp::Insert(p, 42));
        ops.push(BatchOp::Delete(Point::new([2, 2])));
        ops.push(BatchOp::Delete(Point::new([2, 2]))); // second is a no-op
        let mut expected = Vec::new();
        for op in ops.clone() {
            expected.push(match op {
                BatchOp::Insert(p, v) => {
                    sequential.insert(p, v).unwrap();
                    None
                }
                BatchOp::Update(p, v) => sequential.update(p, v).unwrap(),
                BatchOp::Delete(p) => sequential.delete(p).unwrap(),
            });
        }
        let results = batched.apply_batch(ops).unwrap();
        assert_eq!(results, expected, "displaced payloads in submission order");
        assert_eq!(batched.len(), sequential.len());
        let q = RectQuery::new([0, 0], [side, side]).unwrap();
        assert_eq!(
            batched.query_rect(&q).unwrap().records,
            sequential.query_rect(&q).unwrap().records
        );
    }

    #[test]
    fn apply_batch_validates_before_applying_anything() {
        let t: ShardedTable<Onion2D, u32, 2> =
            ShardedTable::build(Onion2D::new(8).unwrap(), Vec::new(), DiskModel::ssd(), 2).unwrap();
        let ops = vec![
            BatchOp::Insert(Point::new([1, 1]), 1),
            BatchOp::Insert(Point::new([8, 0]), 2), // out of bounds
        ];
        assert!(t.apply_batch(ops).is_err());
        assert!(t.is_empty(), "no partial application");
        assert_eq!(t.apply_batch(Vec::new()).unwrap(), Vec::new());
    }

    #[test]
    fn batched_writes_interleave_with_concurrent_readers() {
        let side = 32u32;
        let t = ShardedTable::build(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            DiskModel::ssd(),
            4,
        )
        .unwrap();
        let q = RectQuery::new([0, 0], [side, side]).unwrap();
        let total = u64::from(side) * u64::from(side);
        std::thread::scope(|s| {
            // Writers toggle a disjoint set of "extra" cells via
            // update/delete pairs; readers continuously scan. Every
            // observed result set size must stay within the toggled band,
            // and per-shard locking must never deadlock or lose records.
            let writer = s.spawn(|| {
                for round in 0..20u32 {
                    let ops: Vec<BatchOp<2, u32>> = (0..side)
                        .map(|x| BatchOp::Update(Point::new([x, x]), 900_000 + round))
                        .collect();
                    t.apply_batch(ops).unwrap();
                }
            });
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..20 {
                        let res = t.query_rect(&q).unwrap();
                        assert_eq!(res.records.len() as u64, total, "no torn reads of a shard");
                    }
                });
            }
            writer.join().unwrap();
        });
        // Updates replaced in place: same cardinality, new diagonal values.
        assert_eq!(t.len() as u64, total);
        assert_eq!(t.get(Point::new([3, 3])).unwrap(), Some(900_019));
    }

    #[test]
    fn planned_queries_return_exact_rows_with_fewer_seeks() {
        let side = 32u32;
        let model = DiskModel {
            page_size: 16,
            seek_us: 8_000.0, // seek-heavy: the planner should coalesce
            transfer_us: 10.0,
        };
        let t = ShardedTable::build_paged(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            model,
            4,
            256,
        )
        .unwrap();
        let planner = Planner::new(model);
        for (lo, len) in [
            ([2u32, 3u32], [9u32, 7u32]),
            ([0, 15], [32, 2]),
            ([7, 7], [3, 3]),
        ] {
            let q = RectQuery::new(lo, len).unwrap();
            let exact = t.query_rect(&q).unwrap();
            let (planned, plan) = t.query_rect_planned(&q, &planner).unwrap();
            assert_eq!(planned.records, exact.records, "{q:?} {}", plan.explain());
            assert!(plan.ranges.len() <= plan.clusters);
            assert!(
                planned.io.time_us(t.model()) <= exact.io.time_us(t.model()) + 1e-9,
                "planned must not cost more under the model: {}",
                plan.explain()
            );
        }
        assert!(planner.observed() >= 3, "executed plans feed the planner");
        // The explain entry point plans without scanning.
        let q = RectQuery::new([1, 1], [20, 20]).unwrap();
        let observed_before = planner.observed();
        let plan = t.plan_rect(&q, &planner).unwrap();
        assert!(!plan.explain().is_empty());
        assert_eq!(planner.observed(), observed_before);
    }

    #[test]
    fn paged_sharded_table_warms_up() {
        let side = 16u32;
        let model = DiskModel {
            page_size: 16,
            seek_us: 8_000.0,
            transfer_us: 100.0,
        };
        let t = ShardedTable::build_paged(
            Onion2D::new(side).unwrap(),
            dense_records(side),
            model,
            4,
            64,
        )
        .unwrap();
        let q = RectQuery::new([0, 0], [16, 16]).unwrap();
        let cold = t.query_rect(&q).unwrap();
        let warm = t.query_rect(&q).unwrap();
        assert_eq!(cold.records, warm.records);
        assert!(cold.io.pages > 0);
        assert_eq!(warm.io.pages, 0, "every shard pool warm");
        assert_eq!(warm.io.cache_hits, cold.io.pages);
    }
}
