//! The storage-backend layer: pluggable key-ordered storage under the
//! table and sharding layers.
//!
//! A [`Backend`] is anything that stores `(u64 curve key, value)` entries
//! in key order and can scan contiguous key ranges — the operation the
//! paper's clustering number counts. Three implementations ship:
//!
//! * [`MemoryBackend`] — the [`BPlusTree`] alone; every touched leaf page
//!   counts as a transfer. This is the fastest backend and the default for
//!   `SfcTable`/`ShardedTable`.
//! * [`PagedBackend`] — the B+-tree fronted by an [`LruBufferPool`], with a
//!   [`DiskModel`] attached. Leaf pages play the role of
//!   [`SimulatedDisk`](crate::SimulatedDisk) pages: a scan seeks once, then
//!   each touched leaf is looked up in the pool, and only misses count as
//!   page transfers — so cache effects show up directly in per-query
//!   [`IoStats`](crate::IoStats) and simulated timings.
//! * [`FileBackend`](crate::FileBackend) — genuinely disk-resident: an
//!   immutable [`SegmentTree`](crate::SegmentTree) on a
//!   [`PageStore`](crate::PageStore) file plus an in-memory write overlay.
//!   Its scans report *measured* reads and seeks next to the simulated
//!   counters.
//!
//! Every read path takes `&self` and returns its statistics per call
//! (`PagedBackend` guards its pool with a `Mutex`), so backends are
//! `Send + Sync` whenever their values are — the property the concurrent
//! sharding layer relies on.

use crate::btree::{BPlusTree, EntryGuard, DEFAULT_NODE_CAPACITY};
use crate::cache::LruBufferPool;
use crate::disk::DiskModel;
use onion_core::SfcError;
use std::sync::{Arc, Mutex};

/// Page statistics of one backend range scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Pages transferred from the medium.
    pub pages: u64,
    /// Pages served by the buffer pool (zero for pool-less backends).
    pub cache_hits: u64,
    /// Pages *physically read* from a real storage file — zero for the
    /// simulated backends, measured for [`FileBackend`](crate::FileBackend).
    pub real_reads: u64,
    /// Non-contiguous physical fetches issued by this scan (the first
    /// fetch counts as one) — zero for the simulated backends.
    pub real_seeks: u64,
}

/// Key-ordered storage of `(u64, V)` entries with duplicate keys allowed.
///
/// The contract mirrors what the table layer needs: point reads, writes
/// riding the underlying structure's splits, and an in-order range scan
/// that reports how many pages the scan touched and how many of those the
/// backend's cache absorbed.
///
/// Backends are *forkable*: [`Self::fork`] produces an independent
/// copy-on-write version sharing unmutated pages with the original. The
/// MVCC table layer forks the current version, applies a batch to the
/// fork, and atomically publishes it — readers keep scanning the old
/// version untouched.
pub trait Backend<V> {
    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether the backend holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An O(pages-metadata) copy-on-write fork: the new backend shares
    /// every storage page with `self` until one side mutates it. Physical
    /// cache state (buffer pools) *is* shared — two versions of a table
    /// live on the same simulated device, so warming one warms the other.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Looks up `key` as a pinned read: for in-memory backends the guard
    /// holds the storage page, so no value copy is made and the read stays
    /// valid after the backend (or any fork of it) is mutated or dropped;
    /// disk-resident backends return an owned guard decoded from the page.
    ///
    /// This is the *only* point-read in the trait: a backend whose pages
    /// live in a file cannot return a borrow into them, so the former
    /// `get(&self) -> Option<&V>` could not be part of a storage contract
    /// that admits real disks.
    ///
    /// # Errors
    /// On storage failure (in-memory backends never fail).
    fn get_pinned(&self, key: u64) -> Result<Option<EntryGuard<V>>, SfcError>;

    /// Mutable lookup of a value stored under `key`.
    fn get_mut(&mut self, key: u64) -> Option<&mut V>;

    /// Inserts an entry (duplicates allowed).
    fn insert(&mut self, key: u64, value: V);

    /// Removes the first entry stored under `key`, returning its value.
    fn remove(&mut self, key: u64) -> Option<V>;

    /// Scans entries with keys in `lo..=hi` in ascending key order,
    /// passing each to `visit`, and returns the scan's page statistics.
    ///
    /// # Errors
    /// On storage failure — a short read or a checksum mismatch on a
    /// disk-resident page. Entries visited before the failure may have
    /// been delivered; callers must treat the whole scan as failed.
    fn scan(&self, lo: u64, hi: u64, visit: &mut dyn FnMut(u64, &V))
        -> Result<ScanStats, SfcError>;

    /// Executes the range list of a [`QueryPlan`](crate::QueryPlan) (or any
    /// sorted, disjoint range set) in order, summing page statistics — the
    /// plan-aware scan entry point. Backends may override it to amortize
    /// per-scan setup across a plan's ranges; the default simply chains
    /// [`Self::scan`].
    ///
    /// # Errors
    /// On storage failure, like [`Self::scan`].
    fn scan_ranges(
        &self,
        ranges: &[(u64, u64)],
        visit: &mut dyn FnMut(u64, &V),
    ) -> Result<ScanStats, SfcError> {
        let mut total = ScanStats::default();
        for &(lo, hi) in ranges {
            let s = self.scan(lo, hi, visit)?;
            total.pages += s.pages;
            total.cache_hits += s.cache_hits;
            total.real_reads += s.real_reads;
            total.real_seeks += s.real_seeks;
        }
        Ok(total)
    }

    /// Streams every stored entry to `sink` in ascending key order
    /// (duplicates in insertion order) — the persistence hook snapshots
    /// ride. The default walks [`Self::scan`] over the full key range;
    /// backends with simulated-I/O accounting should override it so a
    /// snapshot never pollutes cache statistics.
    ///
    /// # Errors
    /// On storage failure, like [`Self::scan`].
    fn persist(&self, sink: &mut dyn FnMut(u64, &V)) -> Result<(), SfcError> {
        self.scan(0, u64::MAX, &mut |k, v| sink(k, v))?;
        Ok(())
    }

    /// Replaces the backend's entire contents with `entries`, which must
    /// be sorted ascending by key (duplicates in the order they should be
    /// stored) — the recovery hook snapshots restore through. Existing
    /// entries are discarded; caches are reset.
    ///
    /// # Errors
    /// On storage failure (disk-resident backends rebuild a real segment
    /// file here; the in-memory backends never fail).
    ///
    /// # Panics
    /// If `entries` is not sorted by key.
    fn restore(&mut self, entries: Vec<(u64, V)>) -> Result<(), SfcError>;

    /// Reorganizes storage without changing contents — the log-structured
    /// checkpoint hook. Disk-resident backends merge their write overlay
    /// into a fresh bulk-built segment (and drop the superseded
    /// generation); in-memory backends have nothing to compact.
    ///
    /// # Errors
    /// On storage failure.
    fn compact(&mut self) -> Result<(), SfcError> {
        Ok(())
    }
}

/// The plain in-memory backend: a [`BPlusTree`], nothing else. Every leaf
/// page a scan touches counts as one transferred page.
#[derive(Debug)]
pub struct MemoryBackend<V> {
    tree: BPlusTree<V>,
}

impl<V> MemoryBackend<V> {
    /// An empty backend with the default node capacity.
    pub fn new() -> Self {
        MemoryBackend {
            tree: BPlusTree::new(DEFAULT_NODE_CAPACITY),
        }
    }

    /// Bulk-loads from entries sorted ascending by key.
    ///
    /// # Panics
    /// If the input is not sorted.
    pub fn bulk_load(entries: Vec<(u64, V)>) -> Self {
        MemoryBackend {
            tree: BPlusTree::bulk_load(entries, DEFAULT_NODE_CAPACITY),
        }
    }

    /// The underlying B+-tree (invariant checks in tests, stats).
    pub fn tree(&self) -> &BPlusTree<V> {
        &self.tree
    }
}

impl<V> Default for MemoryBackend<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> Backend<V> for MemoryBackend<V> {
    fn len(&self) -> usize {
        self.tree.len()
    }

    fn fork(&self) -> Self {
        MemoryBackend {
            tree: self.tree.clone(),
        }
    }

    fn get_pinned(&self, key: u64) -> Result<Option<EntryGuard<V>>, SfcError> {
        Ok(self.tree.get_pinned(key))
    }

    fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.tree.get_mut(key)
    }

    fn insert(&mut self, key: u64, value: V) {
        self.tree.insert(key, value);
    }

    fn remove(&mut self, key: u64) -> Option<V> {
        self.tree.remove(key)
    }

    fn scan(
        &self,
        lo: u64,
        hi: u64,
        visit: &mut dyn FnMut(u64, &V),
    ) -> Result<ScanStats, SfcError> {
        let mut pages = 0u64;
        self.tree.scan_range(lo, hi, &mut |_| pages += 1, visit);
        Ok(ScanStats {
            pages,
            ..ScanStats::default()
        })
    }

    fn persist(&self, sink: &mut dyn FnMut(u64, &V)) -> Result<(), SfcError> {
        self.tree.scan_range(0, u64::MAX, &mut |_| {}, sink);
        Ok(())
    }

    fn restore(&mut self, entries: Vec<(u64, V)>) -> Result<(), SfcError> {
        self.tree = BPlusTree::bulk_load(entries, DEFAULT_NODE_CAPACITY);
        Ok(())
    }
}

/// A paged backend: the B+-tree's leaves treated as disk pages behind an
/// [`LruBufferPool`], priced by a [`DiskModel`].
///
/// Scans report only pool *misses* as transferred pages, so a workload that
/// re-touches the same region (the regime
/// [`SimulatedDisk`](crate::SimulatedDisk) cannot express) gets cheaper as
/// the pool warms — and a curve that clusters queries into fewer, tighter
/// ranges keeps a smaller page working set, which is exactly the cache
/// effect the Onion Curve paper's clustering argument predicts.
///
/// The pool sits behind a `Mutex` (locked once per page access), so the
/// backend stays `Sync`; concurrent scans contend only on the pool
/// bookkeeping, not on the tree. Forks share the pool through an `Arc`:
/// the pool models the *physical* page cache of the device, which every
/// version of the tree lives on — page ids are stable across forks, so
/// pages untouched by a batch stay warm across epochs.
#[derive(Debug)]
pub struct PagedBackend<V> {
    tree: BPlusTree<V>,
    pool: Arc<Mutex<LruBufferPool>>,
    model: DiskModel,
}

impl<V> PagedBackend<V> {
    /// An empty backend whose pool holds at most `pool_pages` pages.
    pub fn new(model: DiskModel, pool_pages: usize) -> Self {
        PagedBackend {
            tree: BPlusTree::new(model.page_size.max(2)),
            pool: Arc::new(Mutex::new(LruBufferPool::new(pool_pages))),
            model,
        }
    }

    /// Bulk-loads from entries sorted ascending by key; leaves hold
    /// `model.page_size` entries, matching the disk model's page math.
    ///
    /// # Panics
    /// If the input is not sorted.
    pub fn bulk_load(entries: Vec<(u64, V)>, model: DiskModel, pool_pages: usize) -> Self {
        PagedBackend {
            tree: BPlusTree::bulk_load(entries, model.page_size.max(2)),
            pool: Arc::new(Mutex::new(LruBufferPool::new(pool_pages))),
            model,
        }
    }

    /// The disk model pricing this backend's transfers.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Lifetime hit/miss counters of the buffer pool.
    pub fn pool_stats(&self) -> (u64, u64) {
        let pool = self.pool.lock().expect("buffer pool poisoned");
        (pool.hits(), pool.misses())
    }

    /// The underlying B+-tree (invariant checks in tests, stats).
    pub fn tree(&self) -> &BPlusTree<V> {
        &self.tree
    }
}

impl<V: Clone> Backend<V> for PagedBackend<V> {
    fn len(&self) -> usize {
        self.tree.len()
    }

    fn fork(&self) -> Self {
        PagedBackend {
            tree: self.tree.clone(),
            pool: Arc::clone(&self.pool),
            model: self.model,
        }
    }

    fn get_pinned(&self, key: u64) -> Result<Option<EntryGuard<V>>, SfcError> {
        Ok(self.tree.get_pinned(key))
    }

    fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.tree.get_mut(key)
    }

    fn insert(&mut self, key: u64, value: V) {
        self.tree.insert(key, value);
    }

    fn remove(&mut self, key: u64) -> Option<V> {
        self.tree.remove(key)
    }

    fn scan(
        &self,
        lo: u64,
        hi: u64,
        visit: &mut dyn FnMut(u64, &V),
    ) -> Result<ScanStats, SfcError> {
        let mut stats = ScanStats::default();
        self.tree.scan_range(
            lo,
            hi,
            // Lock per page, not across the scan: the critical section is
            // the O(1) LRU bookkeeping only, so concurrent readers contend
            // on that and never on each other's leaf traversal or visits.
            &mut |leaf| {
                let hit = self
                    .pool
                    .lock()
                    .expect("buffer pool poisoned")
                    .access(leaf as u64);
                if hit {
                    stats.cache_hits += 1;
                } else {
                    stats.pages += 1;
                }
            },
            visit,
        );
        Ok(stats)
    }

    /// Walks the tree directly, bypassing the buffer pool: snapshotting
    /// the backend must not warm (or thrash) the cache the live query
    /// statistics are measuring.
    fn persist(&self, sink: &mut dyn FnMut(u64, &V)) -> Result<(), SfcError> {
        self.tree.scan_range(0, u64::MAX, &mut |_| {}, sink);
        Ok(())
    }

    /// Rebuilds the tree from the sorted entries and resets the buffer
    /// pool: the old page ids are meaningless against the new leaves.
    fn restore(&mut self, entries: Vec<(u64, V)>) -> Result<(), SfcError> {
        self.tree = BPlusTree::bulk_load(entries, self.model.page_size.max(2));
        let mut pool = self.pool.lock().expect("buffer pool poisoned");
        *pool = LruBufferPool::new(pool.capacity());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|k| (k, k * 10)).collect()
    }

    #[test]
    fn memory_backend_round_trips() {
        let mut b = MemoryBackend::bulk_load(entries(1000));
        assert_eq!(b.len(), 1000);
        assert_eq!(b.get_pinned(500).unwrap().as_deref(), Some(&5000));
        *b.get_mut(500).unwrap() = 1;
        assert_eq!(b.remove(500), Some(1));
        assert!(b.get_pinned(500).unwrap().is_none());
        b.insert(500, 7);
        let mut got = Vec::new();
        let stats = b.scan(498, 502, &mut |k, &v| got.push((k, v))).unwrap();
        assert_eq!(
            got,
            vec![(498, 4980), (499, 4990), (500, 7), (501, 5010), (502, 5020)]
        );
        assert!(stats.pages >= 1);
        assert_eq!(stats.cache_hits, 0, "no pool, no hits");
        b.tree().check_invariants().unwrap();
    }

    #[test]
    fn paged_backend_hits_cache_on_rescans() {
        let model = DiskModel {
            page_size: 16,
            seek_us: 1000.0,
            transfer_us: 10.0,
        };
        let b = PagedBackend::bulk_load(entries(256), model, 64);
        let mut sink = 0u64;
        let cold = b.scan(0, 255, &mut |_, &v| sink += v).unwrap();
        assert_eq!(cold.pages, 16, "16 leaves, all cold");
        assert_eq!(cold.cache_hits, 0);
        let warm = b.scan(0, 255, &mut |_, &v| sink += v).unwrap();
        assert_eq!(warm.pages, 0, "whole scan served from the pool");
        assert_eq!(warm.cache_hits, 16);
        assert_eq!(b.pool_stats(), (16, 16));
        std::hint::black_box(sink);
    }

    #[test]
    fn tiny_pool_thrashes() {
        let model = DiskModel {
            page_size: 16,
            seek_us: 1000.0,
            transfer_us: 10.0,
        };
        let b = PagedBackend::bulk_load(entries(256), model, 2);
        for _ in 0..3 {
            let stats = b.scan(0, 255, &mut |_, _| {}).unwrap();
            assert_eq!(stats.pages, 16, "a 2-page pool cannot hold a 16-page scan");
            assert_eq!(stats.cache_hits, 0);
        }
    }

    #[test]
    fn coalesced_super_range_rescan_counts_each_page_once() {
        // Regression: a super-range starting exactly on a page boundary
        // (key 16 = first key of leaf 1) used to bill the *landing* leaf 0
        // too, although no entry of leaf 0 is scanned — so re-scanning a
        // coalesced plan reported one phantom cache hit per boundary-
        // aligned range. Leaf 1 holds keys 16..=31; the scan legitimately
        // peeks leaf 2 (duplicates of 31 could continue there), so the
        // true page count is 2 — not 3.
        let model = DiskModel {
            page_size: 16,
            seek_us: 1000.0,
            transfer_us: 10.0,
        };
        let b = PagedBackend::bulk_load(entries(64), model, 64);
        let cold = b.scan(16, 31, &mut |_, _| {}).unwrap();
        assert_eq!(cold.pages + cold.cache_hits, 2, "no phantom landing page");
        let warm = b.scan(16, 31, &mut |_, _| {}).unwrap();
        assert_eq!(warm.pages, 0);
        assert_eq!(warm.cache_hits, 2, "re-scan hits exactly the read pages");
        // The plan-aware multi-range scan sums identically: 2 pages for
        // (16, 31) as above, 1 for (48, 63) (last leaf, nothing to peek).
        let plan = b
            .scan_ranges(&[(16, 31), (48, 63)], &mut |_, _| {})
            .unwrap();
        assert_eq!(plan.pages + plan.cache_hits, 3);
    }

    #[test]
    fn persist_restore_round_trips_without_touching_the_pool() {
        let model = DiskModel {
            page_size: 16,
            seek_us: 1000.0,
            transfer_us: 10.0,
        };
        let mut paged = PagedBackend::bulk_load(entries(128), model, 32);
        paged.scan(0, 127, &mut |_, _| {}).unwrap();
        let stats_before = paged.pool_stats();
        let mut dumped = Vec::new();
        paged.persist(&mut |k, &v| dumped.push((k, v))).unwrap();
        assert_eq!(dumped, entries(128), "persist streams in key order");
        assert_eq!(
            paged.pool_stats(),
            stats_before,
            "persist must bypass the buffer pool"
        );
        // Restore into the other backend kind: the hooks are the
        // cross-backend round-trip the durable layer relies on.
        let mut mem = MemoryBackend::new();
        mem.restore(dumped.clone()).unwrap();
        assert_eq!(mem.len(), 128);
        assert_eq!(mem.get_pinned(77).unwrap().as_deref(), Some(&770));
        mem.tree().check_invariants().unwrap();
        // Restoring the paged backend resets its pool accounting.
        paged.restore(dumped).unwrap();
        assert_eq!(paged.pool_stats(), (0, 0), "restore resets the pool");
        assert_eq!(paged.len(), 128);
        let cold = paged.scan(0, 127, &mut |_, _| {}).unwrap();
        assert_eq!(cold.cache_hits, 0, "post-restore scans start cold");
        paged.tree().check_invariants().unwrap();
    }

    #[test]
    fn backends_agree_through_the_trait() {
        fn drive<B: Backend<u64>>(b: &mut B) -> Vec<(u64, u64)> {
            b.insert(3, 30);
            b.insert(1, 10);
            b.insert(2, 20);
            b.insert(3, 31);
            assert_eq!(b.remove(3), Some(30), "first duplicate removed first");
            let mut got = Vec::new();
            b.scan(0, 10, &mut |k, &v| got.push((k, v))).unwrap();
            got
        }
        let mut mem = MemoryBackend::new();
        let mut paged = PagedBackend::new(DiskModel::ssd(), 8);
        assert_eq!(drive(&mut mem), drive(&mut paged));
    }
}
