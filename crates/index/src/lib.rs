//! # sfc-index
//!
//! An SFC-backed storage engine — the application the Onion Curve paper
//! motivates (§I): index multi-dimensional data with one-dimensional
//! techniques by keying records with their curve index. The engine is
//! layered:
//!
//! * **Storage backends** — the [`Backend`] trait over key-ordered storage,
//!   with [`MemoryBackend`] (a from-scratch [`BPlusTree`]: bulk load,
//!   inserts with splits, lazy removal, linked-leaf range scans, invariant
//!   checker), [`PagedBackend`] (the tree's leaves treated as
//!   [`SimulatedDisk`]-style pages behind an [`LruBufferPool`], so cache
//!   effects show up in query stats), and [`FileBackend`] (genuinely
//!   disk-resident: an immutable bulk-built [`SegmentTree`] file on a
//!   [`PageStore`] plus an in-memory write overlay, reporting *measured*
//!   seek/read counters next to the simulated ones);
//! * **Page stores** — the [`PageStore`] trait ([`store`] module):
//!   explicit page-granular read/write/sync against a real medium, with
//!   [`FileStore`] as the file implementation and an injection seam for
//!   fault-injecting test stores;
//! * **Tables** — [`SfcTable`]: records ordered by any
//!   [`onion_core::SpaceFillingCurve`]; rectangle queries are decomposed
//!   into the curve's cluster ranges, so **seeks per query = the paper's
//!   clustering number**. `Send + Sync`, with a write path
//!   (`insert`/`delete`/`update`) and batch query/lookup APIs riding the
//!   batch mapping kernels;
//! * **Shards** — [`ShardedTable`]: the table partitioned into contiguous
//!   curve ranges ([`partition_universe`], with communication metrics for
//!   the load-balancing application), queried concurrently under
//!   [`std::thread::scope`] with per-shard [`IoStats`] merging. Shard
//!   state is **epoch MVCC**: the live state is an immutable,
//!   epoch-stamped [`TableVersion`]; every read pins one (no lock held
//!   while scanning, so a scan observes exactly one epoch) and batched
//!   writers ([`ShardedTable::apply_batch`]) copy-on-write only the
//!   shards and B+-tree pages a batch touches before installing the new
//!   version with a pointer swap. A [`RetentionPolicy`]-bounded window of
//!   recent versions backs [`ShardedTable::snapshot_at`] time-travel
//!   reads;
//! * **Planning** — [`Planner`] / [`QueryPlan`]: an adaptive query planner
//!   that chooses each rectangle query's decomposition budget (exact
//!   cluster ranges, gap-coalesced, or one covering range) from a cost
//!   model fed by live [`IoStats`] — see the [`plan`](Planner) module docs
//!   for the model. The concurrent serving layer over all of this lives in
//!   the `sfc-engine` crate;
//! * **Durability** — the [`wal`] module: an epoch-framed, checksummed
//!   write-ahead log ([`Wal`]) plus curve-ordered snapshots
//!   ([`write_snapshot`]/[`read_snapshot`]) over the [`Backend`]
//!   persist/restore hooks. The serving layer commits each epoch batch to
//!   the log *before* applying it, and recovery replays
//!   `snapshot + WAL suffix` — see the [`wal`] module docs for the disk
//!   formats and the torn-tail policy.
//!
//! ```
//! use onion_core::{Onion2D, Point};
//! use sfc_index::{DiskModel, QueryOptions, SfcTable, ShardedTable};
//! use sfc_clustering::RectQuery;
//!
//! let records: Vec<(Point<2>, u32)> = (0..64u32).map(|i| (Point::new([i, i]), i)).collect();
//! let q = RectQuery::new([0, 0], [10, 10]).unwrap();
//! let opts = QueryOptions::default();
//!
//! let table = SfcTable::build(Onion2D::new(64).unwrap(), records.clone(), DiskModel::hdd()).unwrap();
//! assert_eq!(table.query_rect(&q, &opts).unwrap().records.len(), 10);
//!
//! // The same query through four concurrent shards returns the same rows.
//! let sharded = ShardedTable::build(Onion2D::new(64).unwrap(), records, DiskModel::hdd(), 4).unwrap();
//! assert_eq!(sharded.query_rect(&q, &opts).unwrap().records, table.query_rect(&q, &opts).unwrap().records);
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid` so the `prefetch` module alone can scope an
// `allow` around the `_mm_prefetch` cache hint (which touches no memory);
// every other module still rejects unsafe code outright.
#![deny(unsafe_code)]

mod backend;
mod btree;
mod cache;
mod disk;
mod partition;
mod plan;
mod prefetch;
mod segment;
mod shard;
pub mod store;
mod stored;
mod table;
pub mod wal;

pub use backend::{Backend, MemoryBackend, PagedBackend, ScanStats};
pub use btree::{BPlusTree, EntryGuard, RangeIter, DEFAULT_NODE_CAPACITY};
pub use cache::LruBufferPool;
pub use disk::{DiskModel, IoStats, SimulatedDisk};
pub use partition::{
    evaluate_partitioning, owner_of, partition_universe, try_owner_of, Partition, PartitionMetrics,
};
pub use plan::{record_density, PlanStrategy, Planner, QueryPlan};
pub use segment::{SegmentScanStats, SegmentTree, SEGMENT_MAGIC};
pub use shard::{BatchOp, RetentionPolicy, ShardedTable, TableSnapshot, TableVersion};
pub use store::{FileStore, PageStore, StoreStats};
pub use stored::{FileBackend, StoreConfig, StoreFactory};
pub use table::{QueryOptions, QueryResult, RangeMode, Record, SfcTable, ValueGuard};
pub use wal::{
    crc32, decode_seq, encode_seq, read_snapshot, write_snapshot, EpochFrame, SnapshotContents,
    Wal, WalCodec, WalCursor, SNAPSHOT_MAGIC, WAL_MAGIC,
};
