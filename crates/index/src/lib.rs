//! # sfc-index
//!
//! An SFC-backed spatial index — the application the Onion Curve paper
//! motivates (§I): index multi-dimensional data with one-dimensional
//! techniques by keying records with their curve index.
//!
//! * [`BPlusTree`] — a from-scratch in-memory B+-tree (bulk load, inserts
//!   with splits, linked-leaf range scans, invariant checker);
//! * [`SfcTable`] — records ordered by any [`onion_core::SpaceFillingCurve`];
//!   rectangle queries are decomposed into the curve's cluster ranges, so
//!   **seeks per query = the paper's clustering number**;
//! * [`SimulatedDisk`] / [`DiskModel`] — explicit seek + transfer cost
//!   accounting (HDD/SSD presets);
//! * [`partition_universe`] — contiguous range partitioning with
//!   communication metrics, for the load-balancing application.
//!
//! ```
//! use onion_core::{Onion2D, Point};
//! use sfc_index::{DiskModel, SfcTable};
//! use sfc_clustering::RectQuery;
//!
//! let curve = Onion2D::new(64).unwrap();
//! let records = (0..64u32).map(|i| (Point::new([i, i]), i)).collect();
//! let table = SfcTable::build(curve, records, DiskModel::hdd()).unwrap();
//! let hits = table.query_rect(&RectQuery::new([0, 0], [10, 10]).unwrap()).unwrap();
//! assert_eq!(hits.records.len(), 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod btree;
mod cache;
mod disk;
mod partition;
mod table;

pub use btree::{BPlusTree, RangeIter, DEFAULT_NODE_CAPACITY};
pub use cache::LruBufferPool;
pub use disk::{DiskModel, IoStats, SimulatedDisk};
pub use partition::{
    evaluate_partitioning, owner_of, partition_universe, Partition, PartitionMetrics,
};
pub use table::{QueryResult, Record, SfcTable};
