//! `SfcTable`: a spatial table organized by a space-filling curve.
//!
//! Records are keyed by their cell's curve index and stored in a
//! [`BPlusTree`]; rectangle queries are decomposed into the curve's cluster
//! ranges (`sfc-clustering`) and answered with one B+-tree range scan per
//! cluster. The number of scans *is* the paper's clustering number, so the
//! choice of curve directly controls the number of seeks.

use crate::btree::{BPlusTree, DEFAULT_NODE_CAPACITY};
use crate::disk::{DiskModel, IoStats};
use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::{cluster_ranges_into, coalesce_ranges, ClusterScratch, RectQuery};
use std::cell::RefCell;

/// A record stored in the table: a point with an opaque payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record<const D: usize, V> {
    /// The record's location.
    pub point: Point<D>,
    /// Application payload.
    pub value: V,
}

/// Result of a rectangle query against an [`SfcTable`].
#[derive(Clone, Debug)]
pub struct QueryResult<const D: usize, V> {
    /// Matching records, in curve-key order.
    pub records: Vec<Record<D, V>>,
    /// Number of contiguous key ranges scanned (the clustering number of
    /// the query under the table's curve).
    pub ranges_scanned: u64,
    /// Simulated I/O statistics: one seek per range, one page per B+-tree
    /// leaf touched.
    pub io: IoStats,
}

/// A spatial table whose rows are ordered by an SFC.
///
/// Holds per-table scratch buffers so rectangle queries reuse the same
/// range-decomposition memory (`RefCell` interior mutability: the table is
/// single-threaded per handle, like any cursor-carrying structure).
pub struct SfcTable<C, V, const D: usize> {
    curve: C,
    tree: BPlusTree<Record<D, V>>,
    model: DiskModel,
    scratch: RefCell<QueryScratch<D>>,
}

/// Reusable per-table query state.
#[derive(Default, Debug)]
struct QueryScratch<const D: usize> {
    cluster: ClusterScratch<D>,
    ranges: Vec<(u64, u64)>,
}

impl<const D: usize, C: SpaceFillingCurve<D>, V: Clone> SfcTable<C, V, D> {
    /// Builds a table over `curve` from a batch of records (bulk load).
    ///
    /// Keys are derived with one [`SpaceFillingCurve::fill_indices`] batch
    /// call, so the curve's per-call setup is paid once for the whole load
    /// rather than once per record.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe.
    pub fn build(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
    ) -> Result<Self, SfcError> {
        let universe = curve.universe();
        let mut points: Vec<Point<D>> = Vec::with_capacity(records.len());
        for (point, _) in &records {
            if !universe.contains(*point) {
                return Err(SfcError::PointOutOfBounds {
                    point: point.to_string(),
                    side: universe.side(),
                });
            }
            points.push(*point);
        }
        let mut keys: Vec<u64> = Vec::new();
        curve.fill_indices(&points, &mut keys);
        let mut keyed: Vec<(u64, Record<D, V>)> = keys
            .into_iter()
            .zip(records)
            .map(|(key, (point, value))| (key, Record { point, value }))
            .collect();
        keyed.sort_by_key(|&(k, _)| k);
        let tree = BPlusTree::bulk_load(keyed, DEFAULT_NODE_CAPACITY);
        Ok(SfcTable {
            curve,
            tree,
            model,
            scratch: RefCell::new(QueryScratch::default()),
        })
    }

    /// Creates an empty table.
    pub fn new(curve: C, model: DiskModel) -> Self {
        SfcTable {
            curve,
            tree: BPlusTree::new(DEFAULT_NODE_CAPACITY),
            model,
            scratch: RefCell::new(QueryScratch::default()),
        }
    }

    /// Inserts a record (index maintenance through the B+-tree).
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn insert(&mut self, point: Point<D>, value: V) -> Result<(), SfcError> {
        let key = self.curve.index_of(point)?;
        self.tree.insert(key, Record { point, value });
        Ok(())
    }

    /// The curve ordering this table.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// The disk cost model used for simulated timings.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Answers a rectangle query: decomposes it into cluster ranges and
    /// scans each, reporting per-query I/O (seeks = ranges, pages = leaf
    /// nodes touched).
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn query_rect(&self, q: &RectQuery<D>) -> Result<QueryResult<D, V>, SfcError> {
        let side = self.curve.universe().side();
        if !q.fits_in(side) {
            return Err(SfcError::PointOutOfBounds {
                point: Point::new(q.hi()).to_string(),
                side,
            });
        }
        let scratch = &mut *self.scratch.borrow_mut();
        cluster_ranges_into(&self.curve, q, &mut scratch.cluster, &mut scratch.ranges);
        self.tree.reset_leaf_visits();
        let mut records = Vec::new();
        for &(lo, hi) in &scratch.ranges {
            for (_, rec) in self.tree.range(lo, hi) {
                debug_assert!(q.contains(rec.point));
                records.push(rec.clone());
            }
        }
        let io = IoStats {
            seeks: scratch.ranges.len() as u64,
            pages: self.tree.leaf_visits(),
            entries: records.len() as u64,
        };
        Ok(QueryResult {
            records,
            ranges_scanned: scratch.ranges.len() as u64,
            io,
        })
    }

    /// Point lookup.
    pub fn get(&self, p: Point<D>) -> Result<Option<&V>, SfcError> {
        let key = self.curve.index_of(p)?;
        Ok(self.tree.get(key).map(|r| &r.value))
    }

    /// Like [`Self::query_rect`], but coalesces cluster ranges separated by
    /// gaps of at most `max_gap` keys before scanning — the
    /// seek-vs-read-amplification trade of Asano et al. (paper reference
    /// \[15\]). Scanned non-matching records are filtered out; `io.entries`
    /// counts everything touched, so amplification is
    /// `io.entries / records.len()`.
    pub fn query_rect_coalesced(
        &self,
        q: &RectQuery<D>,
        max_gap: u64,
    ) -> Result<QueryResult<D, V>, SfcError> {
        let side = self.curve.universe().side();
        if !q.fits_in(side) {
            return Err(SfcError::PointOutOfBounds {
                point: Point::new(q.hi()).to_string(),
                side,
            });
        }
        let ranges = {
            let scratch = &mut *self.scratch.borrow_mut();
            cluster_ranges_into(&self.curve, q, &mut scratch.cluster, &mut scratch.ranges);
            coalesce_ranges(&scratch.ranges, max_gap)
        };
        self.tree.reset_leaf_visits();
        let mut records = Vec::new();
        let mut touched = 0u64;
        for &(lo, hi) in &ranges {
            for (_, rec) in self.tree.range(lo, hi) {
                touched += 1;
                if q.contains(rec.point) {
                    records.push(rec.clone());
                }
            }
        }
        let io = IoStats {
            seeks: ranges.len() as u64,
            pages: self.tree.leaf_visits(),
            entries: touched,
        };
        Ok(QueryResult {
            records,
            ranges_scanned: ranges.len() as u64,
            io,
        })
    }

    /// The `k` records nearest to `center` in Euclidean distance — the
    /// "multi-dimensional similarity searching" application of §I.
    ///
    /// Works by querying expanding Chebyshev windows around `center`
    /// (radius doubling each round): once at least `k` hits lie within
    /// Euclidean distance `r` of the center, no record outside the window
    /// can be closer. Returns `(record, squared distance)` pairs sorted by
    /// distance (ties broken by curve key order), with fewer than `k`
    /// entries only if the table is smaller than `k`.
    pub fn knn(&self, center: Point<D>, k: usize) -> Result<Vec<(Record<D, V>, u64)>, SfcError> {
        let side = self.curve.universe().side();
        if !self.curve.universe().contains(center) {
            return Err(SfcError::PointOutOfBounds {
                point: center.to_string(),
                side,
            });
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let dist2 = |p: Point<D>| -> u64 {
            (0..D)
                .map(|d| {
                    let delta = u64::from(p.0[d].abs_diff(center.0[d]));
                    delta * delta
                })
                .sum()
        };
        let mut radius = 1u32;
        loop {
            let lo: [u32; D] = std::array::from_fn(|d| center.0[d].saturating_sub(radius));
            let len: [u32; D] =
                std::array::from_fn(|d| (center.0[d] + radius).min(side - 1) - lo[d] + 1);
            let window = RectQuery::new(lo, len).expect("window is non-degenerate");
            let res = self.query_rect(&window)?;
            let mut hits: Vec<(Record<D, V>, u64)> = res
                .records
                .into_iter()
                .map(|r| {
                    let d2 = dist2(r.point);
                    (r, d2)
                })
                .collect();
            hits.sort_by_key(|&(_, d2)| d2);
            let safe = u64::from(radius) * u64::from(radius);
            let certain = hits.iter().take(k).filter(|&&(_, d2)| d2 <= safe).count();
            let window_is_whole_universe = len.iter().all(|&l| l == side);
            if certain >= k || window_is_whole_universe {
                hits.truncate(k);
                return Ok(hits);
            }
            radius = radius.saturating_mul(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::Onion2D;

    fn table() -> SfcTable<Onion2D, u32, 2> {
        let curve = Onion2D::new(16).unwrap();
        let mut records = Vec::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                records.push((Point::new([x, y]), x * 100 + y));
            }
        }
        SfcTable::build(curve, records, DiskModel::hdd()).unwrap()
    }

    #[test]
    fn build_and_point_lookup() {
        let t = table();
        assert_eq!(t.len(), 256);
        assert_eq!(t.get(Point::new([3, 7])).unwrap(), Some(&307));
        assert_eq!(
            t.get(Point::new([20, 0])),
            Err(SfcError::PointOutOfBounds {
                point: "(20, 0)".into(),
                side: 16
            })
        );
    }

    #[test]
    fn rect_query_returns_exactly_the_rect() {
        let t = table();
        let q = RectQuery::new([2, 3], [5, 4]).unwrap();
        let res = t.query_rect(&q).unwrap();
        assert_eq!(res.records.len() as u64, q.volume());
        assert!(res.records.iter().all(|r| q.contains(r.point)));
        // Seeks equal the clustering number of the query.
        let expected = sfc_clustering::clustering_number(t.curve(), &q);
        assert_eq!(res.ranges_scanned, expected);
        assert_eq!(res.io.seeks, expected);
        assert_eq!(res.io.entries, q.volume());
        assert!(res.io.pages >= expected, "each range touches >= 1 page");
    }

    #[test]
    fn incremental_inserts_match_bulk_build() {
        let curve = Onion2D::new(16).unwrap();
        let mut incremental: SfcTable<Onion2D, u32, 2> = SfcTable::new(curve, DiskModel::ssd());
        for x in (0..16u32).rev() {
            for y in 0..16u32 {
                incremental.insert(Point::new([x, y]), x * 100 + y).unwrap();
            }
        }
        let bulk = table();
        let q = RectQuery::new([4, 4], [7, 9]).unwrap();
        let mut a: Vec<u32> = incremental
            .query_rect(&q)
            .unwrap()
            .records
            .iter()
            .map(|r| r.value)
            .collect();
        let mut b: Vec<u32> = bulk
            .query_rect(&q)
            .unwrap()
            .records
            .iter()
            .map(|r| r.value)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(incremental.len(), 256);
    }

    #[test]
    fn insert_rejects_out_of_bounds() {
        let curve = Onion2D::new(8).unwrap();
        let mut t: SfcTable<Onion2D, u32, 2> = SfcTable::new(curve, DiskModel::hdd());
        assert!(t.insert(Point::new([8, 0]), 1).is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn sparse_table_returns_subset() {
        let curve = Onion2D::new(16).unwrap();
        let records = vec![
            (Point::new([0, 0]), 1u32),
            (Point::new([5, 5]), 2),
            (Point::new([15, 15]), 3),
            (Point::new([5, 6]), 4),
        ];
        let t = SfcTable::build(curve, records, DiskModel::ssd()).unwrap();
        let q = RectQuery::new([4, 4], [4, 4]).unwrap();
        let res = t.query_rect(&q).unwrap();
        let mut vals: Vec<u32> = res.records.iter().map(|r| r.value).collect();
        vals.sort();
        assert_eq!(vals, vec![2, 4]);
    }

    #[test]
    fn rejects_out_of_bounds_build() {
        let curve = Onion2D::new(8).unwrap();
        let res = SfcTable::build(curve, vec![(Point::new([8, 0]), 0u32)], DiskModel::hdd());
        assert!(res.is_err());
    }

    #[test]
    fn full_universe_query_is_one_seek() {
        let t = table();
        let q = RectQuery::new([0, 0], [16, 16]).unwrap();
        let res = t.query_rect(&q).unwrap();
        assert_eq!(res.ranges_scanned, 1);
        assert_eq!(res.io.seeks, 1);
        assert_eq!(res.records.len(), 256);
    }

    #[test]
    fn simulated_time_uses_model() {
        let t = table();
        let q = RectQuery::new([1, 1], [6, 6]).unwrap();
        let res = t.query_rect(&q).unwrap();
        let time = res.io.time_us(t.model());
        assert!(time > 0.0);
    }

    #[test]
    fn coalesced_query_returns_same_records_with_fewer_seeks() {
        let t = table();
        let q = RectQuery::new([2, 2], [10, 5]).unwrap();
        let exact = t.query_rect(&q).unwrap();
        let merged = t.query_rect_coalesced(&q, 16).unwrap();
        let key = |r: &Record<2, u32>| (r.point, r.value);
        let mut a: Vec<_> = exact.records.iter().map(key).collect();
        let mut b: Vec<_> = merged.records.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "coalescing must not change the result set");
        assert!(merged.io.seeks <= exact.io.seeks);
        assert!(merged.io.entries >= exact.io.entries, "read amplification");
        // An unbounded gap merges everything into one seek.
        let one = t.query_rect_coalesced(&q, u64::MAX).unwrap();
        assert_eq!(one.io.seeks, 1);
    }

    #[test]
    fn knn_matches_bruteforce() {
        let t = table();
        for center in [Point::new([0, 0]), Point::new([8, 8]), Point::new([15, 3])] {
            for k in [1usize, 4, 10] {
                let got = t.knn(center, k).unwrap();
                assert_eq!(got.len(), k);
                // Brute force distances over the dense grid.
                let mut all: Vec<u64> = (0..16u32)
                    .flat_map(|x| (0..16u32).map(move |y| (x, y)))
                    .map(|(x, y)| {
                        let dx = u64::from(x.abs_diff(center.0[0]));
                        let dy = u64::from(y.abs_diff(center.0[1]));
                        dx * dx + dy * dy
                    })
                    .collect();
                all.sort_unstable();
                let expect: Vec<u64> = all.into_iter().take(k).collect();
                let got_d: Vec<u64> = got.iter().map(|&(_, d2)| d2).collect();
                assert_eq!(got_d, expect, "center {center} k {k}");
            }
        }
    }

    #[test]
    fn knn_on_sparse_table() {
        let curve = Onion2D::new(64).unwrap();
        let records = vec![
            (Point::new([1, 1]), 0u32),
            (Point::new([60, 60]), 1),
            (Point::new([10, 12]), 2),
            (Point::new([11, 12]), 3),
        ];
        let t = SfcTable::build(curve, records, DiskModel::ssd()).unwrap();
        let got = t.knn(Point::new([10, 10]), 2).unwrap();
        let vals: Vec<u32> = got.iter().map(|(r, _)| r.value).collect();
        assert_eq!(vals, vec![2, 3]);
        // Asking for more neighbors than records returns all of them.
        let all = t.knn(Point::new([10, 10]), 99).unwrap();
        assert_eq!(all.len(), 4);
        // k = 0 is a no-op.
        assert!(t.knn(Point::new([1, 1]), 0).unwrap().is_empty());
        // Out-of-bounds centers are rejected.
        assert!(t.knn(Point::new([64, 0]), 1).is_err());
    }
}
