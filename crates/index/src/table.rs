//! The table layer: `SfcTable`, a spatial table organized by a
//! space-filling curve over a pluggable storage [`Backend`].
//!
//! Records are keyed by their cell's curve index; rectangle queries are
//! decomposed into the curve's cluster ranges (`sfc-clustering`) and
//! answered with one backend range scan per cluster. The number of scans
//! *is* the paper's clustering number, so the choice of curve directly
//! controls the number of seeks.
//!
//! The table is `Send + Sync` (for thread-safe curves, values, and
//! backends): queries borrow decomposition buffers from a
//! [`ScratchPool`] instead of the old single-threaded `RefCell` scratch,
//! so any number of threads can query one table concurrently while the
//! sharding layer adds curve-aware parallelism on top.

use crate::backend::{Backend, MemoryBackend, PagedBackend};
use crate::btree::EntryGuard;
use crate::disk::{DiskModel, IoStats};
use crate::plan::{Planner, QueryPlan};
use crate::stored::{FileBackend, StoreConfig};
use crate::wal::WalCodec;
use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::{coalesce_ranges, coalesce_to_budget, ClusterScratch, RectQuery, ScratchPool};
use std::path::Path;

/// How a rectangle query's key ranges are derived from its exact cluster
/// decomposition, when no adaptive planner is driving the choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RangeMode {
    /// Scan the exact cluster ranges: seeks per query = the paper's
    /// clustering number, no read amplification.
    #[default]
    Exact,
    /// Coalesce ranges separated by gaps of at most `max_gap` keys before
    /// scanning — the seek-vs-read-amplification trade of Asano et al.
    /// (paper reference \[15\]). Scanned non-matching records are filtered
    /// out; `io.entries` counts everything touched, so amplification is
    /// `io.entries / records.len()`.
    Coalesced {
        /// Largest gap (in curve keys) absorbed into a scan.
        max_gap: u64,
    },
    /// Coalesce the smallest gaps first until at most `max_ranges` pieces
    /// remain — a fixed seek budget instead of a fixed gap threshold.
    Budget {
        /// Maximum number of ranges (seeks) to scan; `0` acts as `1`.
        max_ranges: usize,
    },
}

/// Options selecting how [`SfcTable::query_rect`] /
/// [`ShardedTable::query_rect`](crate::ShardedTable::query_rect) derive
/// and execute a query's range decomposition — the single entry point
/// that subsumes the former `query_rect` / `query_rect_planned` /
/// `query_rect_coalesced` trio.
///
/// `QueryOptions::default()` is the exact, unplanned scan (the old
/// one-argument `query_rect`). With [`Self::planned`], the adaptive
/// planner chooses the budget from its live cost model and `mode` is
/// ignored; the chosen [`QueryPlan`] comes back in
/// [`QueryResult::plan`].
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryOptions<'p> {
    /// Adaptive planner to cost and budget the decomposition (and to feed
    /// realized I/O stats back into). Takes precedence over `mode`.
    pub planner: Option<&'p Planner>,
    /// Fixed range-derivation mode used when `planner` is `None`.
    pub mode: RangeMode,
}

impl<'p> QueryOptions<'p> {
    /// Exact decomposition, no planner — `QueryOptions::default()`.
    pub fn exact() -> Self {
        Self::default()
    }

    /// Route the query through `planner`'s adaptive cost model.
    pub fn planned(planner: &'p Planner) -> Self {
        Self {
            planner: Some(planner),
            mode: RangeMode::Exact,
        }
    }

    /// Coalesce gaps of at most `max_gap` keys before scanning.
    pub fn coalesced(max_gap: u64) -> Self {
        Self {
            planner: None,
            mode: RangeMode::Coalesced { max_gap },
        }
    }

    /// Coalesce down to at most `max_ranges` scan ranges.
    pub fn budget(max_ranges: usize) -> Self {
        Self {
            planner: None,
            mode: RangeMode::Budget { max_ranges },
        }
    }
}

/// A pinned point-lookup result (what [`SfcTable::get`],
/// [`crate::ShardedTable::get`] and
/// [`crate::TableSnapshot::get`] return): dereferences to the stored
/// [`Record`] without copying it. For in-memory backends the guard holds
/// the B+-tree leaf page of the version it was read from, so it remains
/// valid — and immutable — after any number of epoch applies, and even
/// after the table itself is dropped; for disk-resident backends it owns
/// the decoded record outright.
#[derive(Debug, Clone)]
pub struct ValueGuard<const D: usize, V> {
    entry: EntryGuard<Record<D, V>>,
}

impl<const D: usize, V> ValueGuard<D, V> {
    pub(crate) fn new(entry: EntryGuard<Record<D, V>>) -> Self {
        ValueGuard { entry }
    }
}

impl<const D: usize, V> std::ops::Deref for ValueGuard<D, V> {
    type Target = Record<D, V>;

    fn deref(&self) -> &Record<D, V> {
        &self.entry
    }
}

impl<const D: usize, V: Clone> ValueGuard<D, V> {
    /// Owned copy of the pinned payload — the one-call form of
    /// "pin, then clone `guard.value`", for callers that need `V` by
    /// value (e.g. to send it over a channel or the wire).
    pub fn cloned(&self) -> V {
        self.entry.value.clone()
    }
}

/// A record stored in the table: a point with an opaque payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record<const D: usize, V> {
    /// The record's location.
    pub point: Point<D>,
    /// Application payload.
    pub value: V,
}

/// Result of a rectangle query against an [`SfcTable`].
#[derive(Clone, Debug)]
pub struct QueryResult<const D: usize, V> {
    /// Matching records, in curve-key order.
    pub records: Vec<Record<D, V>>,
    /// Number of contiguous key ranges scanned (the clustering number of
    /// the query under the table's curve; for a sharded table, after
    /// splitting at shard boundaries).
    pub ranges_scanned: u64,
    /// Simulated I/O statistics: one seek per range, one page per backend
    /// leaf transferred, plus buffer-pool hits for paged backends.
    pub io: IoStats,
    /// The plan the adaptive planner chose, when the query ran with
    /// [`QueryOptions::planned`]; `None` for fixed-mode scans.
    pub plan: Option<QueryPlan>,
}

/// Validates `records` against `curve`'s universe and keys them with one
/// [`SpaceFillingCurve::fill_indices`] batch call, so the curve's per-call
/// setup (and, for `dyn` curves, virtual dispatch) is paid once for the
/// whole load rather than once per record. Shared by the table and
/// sharding layers.
pub(crate) fn keyed_records<const D: usize, C: SpaceFillingCurve<D>, V>(
    curve: &C,
    records: Vec<(Point<D>, V)>,
) -> Result<Vec<(u64, Record<D, V>)>, SfcError> {
    let universe = curve.universe();
    let mut points: Vec<Point<D>> = Vec::with_capacity(records.len());
    for (point, _) in &records {
        if !universe.contains(*point) {
            return Err(SfcError::PointOutOfBounds {
                point: point.to_string(),
                side: universe.side(),
            });
        }
        points.push(*point);
    }
    let mut keys: Vec<u64> = Vec::new();
    curve.fill_indices(&points, &mut keys);
    let mut keyed: Vec<(u64, Record<D, V>)> = keys
        .into_iter()
        .zip(records)
        .map(|(key, (point, value))| (key, Record { point, value }))
        .collect();
    keyed.sort_by_key(|&(k, _)| k);
    Ok(keyed)
}

/// A spatial table whose rows are ordered by an SFC, stored in a
/// [`Backend`] (in-memory B+-tree by default, paged/cached via
/// [`PagedBackend`]).
///
/// Rectangle-query decomposition borrows buffers from a [`ScratchPool`],
/// so shared references can run queries from many threads at once; writes
/// (`insert`/`delete`/`update`) take `&mut self` like any Rust collection.
pub struct SfcTable<C, V, const D: usize, B = MemoryBackend<Record<D, V>>> {
    curve: C,
    backend: B,
    model: DiskModel,
    scratch: ScratchPool<D>,
    // `V` only occurs inside `B` (as `Backend<Record<D, V>>`); the `fn`
    // wrapper keeps the marker from affecting auto traits or variance.
    _values: std::marker::PhantomData<fn() -> V>,
}

impl<const D: usize, C: SpaceFillingCurve<D>, V: Clone> SfcTable<C, V, D> {
    /// Builds a table over `curve` from a batch of records (bulk load into
    /// the default in-memory backend).
    ///
    /// # Errors
    /// If any point lies outside the curve's universe.
    pub fn build(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
    ) -> Result<Self, SfcError> {
        let keyed = keyed_records(&curve, records)?;
        Ok(SfcTable::from_parts(
            curve,
            MemoryBackend::bulk_load(keyed),
            model,
        ))
    }

    /// Creates an empty table with the default in-memory backend.
    pub fn new(curve: C, model: DiskModel) -> Self {
        SfcTable::from_parts(curve, MemoryBackend::new(), model)
    }
}

impl<const D: usize, C: SpaceFillingCurve<D>, V: Clone>
    SfcTable<C, V, D, PagedBackend<Record<D, V>>>
{
    /// Builds a table whose backend runs page accesses through an LRU
    /// buffer pool of `pool_pages` pages: repeated queries over warm
    /// regions stop paying transfer costs, and per-query [`IoStats`]
    /// report the hit/miss split.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe.
    pub fn build_paged(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        pool_pages: usize,
    ) -> Result<Self, SfcError> {
        let keyed = keyed_records(&curve, records)?;
        let backend = PagedBackend::bulk_load(keyed, model, pool_pages);
        Ok(SfcTable::from_parts(curve, backend, model))
    }

    /// Creates an empty paged table (see [`Self::build_paged`]).
    pub fn new_paged(curve: C, model: DiskModel, pool_pages: usize) -> Self {
        SfcTable::from_parts(curve, PagedBackend::new(model, pool_pages), model)
    }
}

impl<const D: usize, C, V> SfcTable<C, V, D, FileBackend<Record<D, V>>>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
    Record<D, V>: WalCodec,
{
    /// Builds a genuinely disk-resident table: records are bulk-built into
    /// an immutable [`SegmentTree`](crate::SegmentTree) file under `dir`
    /// (fronted by an LRU page cache of `cfg.pool_pages` pages), and later
    /// writes land in an in-memory overlay until the backend is compacted.
    /// Query [`IoStats`] report the *measured* `real_reads` / `real_seeks`
    /// next to the simulated counters.
    ///
    /// # Errors
    /// If any point lies outside the curve's universe, or segment I/O
    /// fails.
    pub fn build_stored(
        curve: C,
        records: Vec<(Point<D>, V)>,
        model: DiskModel,
        dir: &Path,
        cfg: StoreConfig,
    ) -> Result<Self, SfcError> {
        let keyed = keyed_records(&curve, records)?;
        let backend = FileBackend::create(dir, "table", cfg, keyed)?;
        Ok(SfcTable::from_parts(curve, backend, model))
    }

    /// Creates an empty disk-resident table (see [`Self::build_stored`]).
    ///
    /// # Errors
    /// If the empty base segment cannot be written.
    pub fn new_stored(
        curve: C,
        model: DiskModel,
        dir: &Path,
        cfg: StoreConfig,
    ) -> Result<Self, SfcError> {
        let backend = FileBackend::create(dir, "table", cfg, Vec::new())?;
        Ok(SfcTable::from_parts(curve, backend, model))
    }
}

impl<const D: usize, C, V, B> SfcTable<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
    B: Backend<Record<D, V>>,
{
    /// Assembles a table from an already-loaded backend (the generic
    /// constructor behind [`Self::build`] and custom backends).
    pub fn from_parts(curve: C, backend: B, model: DiskModel) -> Self {
        SfcTable {
            curve,
            backend,
            model,
            scratch: ScratchPool::new(),
            _values: std::marker::PhantomData,
        }
    }

    /// The curve ordering this table.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// The disk cost model used for simulated timings.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// The storage backend (stats, invariant checks).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Inserts a record (index maintenance riding the backend's splits).
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn insert(&mut self, point: Point<D>, value: V) -> Result<(), SfcError> {
        let key = self.curve.index_of(point)?;
        self.backend.insert(key, Record { point, value });
        Ok(())
    }

    /// Removes the record at `point`, returning its payload (or `None` if
    /// the cell is vacant).
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn delete(&mut self, point: Point<D>) -> Result<Option<V>, SfcError> {
        let key = self.curve.index_of(point)?;
        Ok(self.backend.remove(key).map(|rec| rec.value))
    }

    /// Replaces the payload at `point` in place, returning the previous
    /// one; inserts (and returns `None`) if the cell is vacant.
    ///
    /// # Errors
    /// If the point lies outside the curve's universe.
    pub fn update(&mut self, point: Point<D>, value: V) -> Result<Option<V>, SfcError> {
        let key = self.curve.index_of(point)?;
        if let Some(rec) = self.backend.get_mut(key) {
            Ok(Some(std::mem::replace(&mut rec.value, value)))
        } else {
            self.backend.insert(key, Record { point, value });
            Ok(None)
        }
    }

    /// Point lookup. The returned [`ValueGuard`] pins the record without
    /// copying it (in-memory backends) or owns the decoded record
    /// (disk-resident backends); it dereferences to the [`Record`].
    pub fn get(&self, p: Point<D>) -> Result<Option<ValueGuard<D, V>>, SfcError> {
        let key = self.curve.index_of(p)?;
        Ok(self.backend.get_pinned(key)?.map(ValueGuard::new))
    }

    /// Batch point lookup: keys every probe with one
    /// [`SpaceFillingCurve::fill_indices`] call (the sanctioned bulk
    /// kernel), then answers each against the backend.
    ///
    /// # Errors
    /// If any probe lies outside the curve's universe.
    pub fn get_batch(&self, points: &[Point<D>]) -> Result<Vec<Option<V>>, SfcError> {
        let universe = self.curve.universe();
        for &p in points {
            if !universe.contains(p) {
                return Err(SfcError::PointOutOfBounds {
                    point: p.to_string(),
                    side: universe.side(),
                });
            }
        }
        let mut keys: Vec<u64> = Vec::with_capacity(points.len());
        self.curve.fill_indices(points, &mut keys);
        keys.into_iter()
            .map(|k| Ok(self.backend.get_pinned(k)?.map(|r| r.value.clone())))
            .collect()
    }

    /// Answers a rectangle query. `opts` selects the execution strategy —
    /// exact cluster ranges (the default: seeks per query = the paper's
    /// clustering number), gap-coalesced or seek-budgeted scans
    /// ([`RangeMode`]), or the adaptive planner
    /// ([`QueryOptions::planned`], which returns its [`QueryPlan`] in
    /// [`QueryResult::plan`]). Whatever the strategy, the returned rows
    /// are identical: only the seek/read-amplification trade moves.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn query_rect(
        &self,
        q: &RectQuery<D>,
        opts: &QueryOptions<'_>,
    ) -> Result<QueryResult<D, V>, SfcError> {
        if let Some(planner) = opts.planner {
            return self.query_planned_inner(q, planner).map(|(mut r, plan)| {
                r.plan = Some(plan);
                r
            });
        }
        match opts.mode {
            RangeMode::Exact => {
                let mut scratch = self.scratch.checkout();
                self.query_with_scratch(q, &mut scratch)
            }
            RangeMode::Coalesced { max_gap } => {
                self.query_coalesced_inner(q, |ranges| coalesce_ranges(ranges, max_gap))
            }
            RangeMode::Budget { max_ranges } => {
                self.query_coalesced_inner(q, |ranges| coalesce_to_budget(ranges, max_ranges))
            }
        }
    }

    /// Answers many rectangle queries with one scratch checkout: the
    /// batched twin of [`Self::query_rect`], amortizing pool traffic the
    /// way `fill_indices` amortizes per-call curve setup.
    ///
    /// # Errors
    /// If any query does not fit inside the universe.
    pub fn query_rect_batch(
        &self,
        queries: &[RectQuery<D>],
    ) -> Result<Vec<QueryResult<D, V>>, SfcError> {
        let mut scratch = self.scratch.checkout();
        queries
            .iter()
            .map(|q| self.query_with_scratch(q, &mut scratch))
            .collect()
    }

    fn query_with_scratch(
        &self,
        q: &RectQuery<D>,
        scratch: &mut ClusterScratch<D>,
    ) -> Result<QueryResult<D, V>, SfcError> {
        self.check_fits(q)?;
        let ranges = scratch.ranges_of(&self.curve, q);
        let mut records = Vec::new();
        let stats = self.backend.scan_ranges(ranges, &mut |_, rec| {
            debug_assert!(q.contains(rec.point));
            records.push(rec.clone());
        })?;
        let io = IoStats {
            seeks: ranges.len() as u64,
            pages: stats.pages,
            entries: records.len() as u64,
            cache_hits: stats.cache_hits,
            real_reads: stats.real_reads,
            real_seeks: stats.real_seeks,
        };
        Ok(QueryResult {
            ranges_scanned: ranges.len() as u64,
            records,
            io,
            plan: None,
        })
    }

    /// Record density of the table: stored records per curve cell, the
    /// `density` input of the planner's cost model (how many entries a
    /// scanned key span is expected to yield).
    pub fn density(&self) -> f64 {
        crate::plan::record_density(self.backend.len(), self.curve.universe().cell_count())
    }

    /// Plans a rectangle query without executing it — the `EXPLAIN` entry
    /// point. The returned [`QueryPlan`] carries the chosen ranges and the
    /// cost-model numbers behind them ([`QueryPlan::explain`]).
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn plan_rect(&self, q: &RectQuery<D>, planner: &Planner) -> Result<QueryPlan, SfcError> {
        self.check_fits(q)?;
        let mut scratch = self.scratch.checkout();
        let full = scratch.ranges_of(&self.curve, q);
        Ok(planner.plan_ranges(full, self.density()))
    }

    /// The planner path behind [`Self::query_rect`]: plan, scan the
    /// planned ranges (filtering out absorbed non-query records), feed the
    /// realized [`IoStats`] back into the planner.
    fn query_planned_inner(
        &self,
        q: &RectQuery<D>,
        planner: &Planner,
    ) -> Result<(QueryResult<D, V>, QueryPlan), SfcError> {
        let plan = self.plan_rect(q, planner)?;
        let mut records = Vec::new();
        let mut io = IoStats {
            seeks: plan.ranges.len() as u64,
            ..IoStats::default()
        };
        let started = std::time::Instant::now();
        let stats = self
            .backend
            .scan_ranges(&plan.ranges, &mut |_, rec: &Record<D, V>| {
                if q.contains(rec.point) {
                    records.push(rec.clone());
                }
            })?;
        let wall_us = started.elapsed().as_secs_f64() * 1e6;
        io.pages = stats.pages;
        io.cache_hits = stats.cache_hits;
        io.entries = records.len() as u64;
        io.real_reads = stats.real_reads;
        io.real_seeks = stats.real_seeks;
        planner.observe(&io);
        if io.real_reads > 0 {
            planner.observe_latency(io.real_seeks, io.real_reads, wall_us);
        }
        Ok((
            QueryResult {
                ranges_scanned: plan.ranges.len() as u64,
                records,
                io,
                plan: None,
            },
            plan,
        ))
    }

    /// The fixed-coalescing path behind [`Self::query_rect`]: `merge`
    /// shrinks the exact decomposition, the scan filters out records from
    /// absorbed gap cells, and `io.entries` counts everything touched.
    fn query_coalesced_inner(
        &self,
        q: &RectQuery<D>,
        merge: impl FnOnce(&[(u64, u64)]) -> Vec<(u64, u64)>,
    ) -> Result<QueryResult<D, V>, SfcError> {
        self.check_fits(q)?;
        let ranges = {
            let mut scratch = self.scratch.checkout();
            merge(scratch.ranges_of(&self.curve, q))
        };
        let mut records = Vec::new();
        let mut touched = 0u64;
        let stats = self.backend.scan_ranges(&ranges, &mut |_, rec| {
            touched += 1;
            if q.contains(rec.point) {
                records.push(rec.clone());
            }
        })?;
        let io = IoStats {
            seeks: ranges.len() as u64,
            pages: stats.pages,
            entries: touched,
            cache_hits: stats.cache_hits,
            real_reads: stats.real_reads,
            real_seeks: stats.real_seeks,
        };
        Ok(QueryResult {
            records,
            ranges_scanned: ranges.len() as u64,
            io,
            plan: None,
        })
    }

    /// Answers a rectangle query through the adaptive planner.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    #[deprecated(
        since = "0.8.0",
        note = "use `query_rect(q, &QueryOptions::planned(planner))`; the plan is in `QueryResult::plan`"
    )]
    pub fn query_rect_planned(
        &self,
        q: &RectQuery<D>,
        planner: &Planner,
    ) -> Result<(QueryResult<D, V>, QueryPlan), SfcError> {
        self.query_planned_inner(q, planner)
    }

    /// Answers a rectangle query over a gap-coalesced decomposition.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    #[deprecated(
        since = "0.8.0",
        note = "use `query_rect(q, &QueryOptions::coalesced(max_gap))`"
    )]
    pub fn query_rect_coalesced(
        &self,
        q: &RectQuery<D>,
        max_gap: u64,
    ) -> Result<QueryResult<D, V>, SfcError> {
        self.query_coalesced_inner(q, |ranges| coalesce_ranges(ranges, max_gap))
    }

    /// The `k` records nearest to `center` in Euclidean distance — the
    /// "multi-dimensional similarity searching" application of §I.
    ///
    /// Works by querying expanding Chebyshev windows around `center`
    /// (radius doubling each round): once at least `k` hits lie within
    /// Euclidean distance `r` of the center, no record outside the window
    /// can be closer. Returns `(record, squared distance)` pairs sorted by
    /// distance (ties broken by curve key order), with fewer than `k`
    /// entries only if the table is smaller than `k`.
    ///
    /// # Errors
    /// If `center` lies outside the universe.
    pub fn knn(&self, center: Point<D>, k: usize) -> Result<Vec<(Record<D, V>, u64)>, SfcError> {
        let side = self.curve.universe().side();
        if !self.curve.universe().contains(center) {
            return Err(SfcError::PointOutOfBounds {
                point: center.to_string(),
                side,
            });
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let dist2 = |p: Point<D>| -> u64 {
            (0..D)
                .map(|d| {
                    let delta = u64::from(p.0[d].abs_diff(center.0[d]));
                    delta * delta
                })
                .sum()
        };
        let mut radius = 1u32;
        loop {
            let lo: [u32; D] = std::array::from_fn(|d| center.0[d].saturating_sub(radius));
            let len: [u32; D] =
                std::array::from_fn(|d| (center.0[d] + radius).min(side - 1) - lo[d] + 1);
            let window = RectQuery::new(lo, len).expect("window is non-degenerate");
            let res = self.query_rect(&window, &QueryOptions::default())?;
            let mut hits: Vec<(Record<D, V>, u64)> = res
                .records
                .into_iter()
                .map(|r| {
                    let d2 = dist2(r.point);
                    (r, d2)
                })
                .collect();
            hits.sort_by_key(|&(_, d2)| d2);
            let safe = u64::from(radius) * u64::from(radius);
            let certain = hits.iter().take(k).filter(|&&(_, d2)| d2 <= safe).count();
            let window_is_whole_universe = len.iter().all(|&l| l == side);
            if certain >= k || window_is_whole_universe {
                hits.truncate(k);
                return Ok(hits);
            }
            radius = radius.saturating_mul(2);
        }
    }

    fn check_fits(&self, q: &RectQuery<D>) -> Result<(), SfcError> {
        let side = self.curve.universe().side();
        if !q.fits_in(side) {
            return Err(SfcError::PointOutOfBounds {
                point: Point::new(q.hi()).to_string(),
                side,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::Onion2D;

    fn table() -> SfcTable<Onion2D, u32, 2> {
        let curve = Onion2D::new(16).unwrap();
        let mut records = Vec::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                records.push((Point::new([x, y]), x * 100 + y));
            }
        }
        SfcTable::build(curve, records, DiskModel::hdd()).unwrap()
    }

    #[test]
    fn build_and_point_lookup() {
        let t = table();
        assert_eq!(t.len(), 256);
        assert_eq!(
            t.get(Point::new([3, 7])).unwrap().map(|g| g.value),
            Some(307)
        );
        assert_eq!(
            t.get(Point::new([20, 0])).err(),
            Some(SfcError::PointOutOfBounds {
                point: "(20, 0)".into(),
                side: 16
            })
        );
    }

    #[test]
    fn rect_query_returns_exactly_the_rect() {
        let t = table();
        let q = RectQuery::new([2, 3], [5, 4]).unwrap();
        let res = t.query_rect(&q, &QueryOptions::default()).unwrap();
        assert_eq!(res.records.len() as u64, q.volume());
        assert!(res.records.iter().all(|r| q.contains(r.point)));
        // Seeks equal the clustering number of the query.
        let expected = sfc_clustering::clustering_number(t.curve(), &q);
        assert_eq!(res.ranges_scanned, expected);
        assert_eq!(res.io.seeks, expected);
        assert_eq!(res.io.entries, q.volume());
        assert!(res.io.pages >= expected, "each range touches >= 1 page");
        assert_eq!(res.io.cache_hits, 0, "memory backend has no pool");
    }

    #[test]
    fn incremental_inserts_match_bulk_build() {
        let curve = Onion2D::new(16).unwrap();
        let mut incremental: SfcTable<Onion2D, u32, 2> = SfcTable::new(curve, DiskModel::ssd());
        for x in (0..16u32).rev() {
            for y in 0..16u32 {
                incremental.insert(Point::new([x, y]), x * 100 + y).unwrap();
            }
        }
        let bulk = table();
        let q = RectQuery::new([4, 4], [7, 9]).unwrap();
        let mut a: Vec<u32> = incremental
            .query_rect(&q, &QueryOptions::default())
            .unwrap()
            .records
            .iter()
            .map(|r| r.value)
            .collect();
        let mut b: Vec<u32> = bulk
            .query_rect(&q, &QueryOptions::default())
            .unwrap()
            .records
            .iter()
            .map(|r| r.value)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(incremental.len(), 256);
    }

    #[test]
    fn insert_rejects_out_of_bounds() {
        let curve = Onion2D::new(8).unwrap();
        let mut t: SfcTable<Onion2D, u32, 2> = SfcTable::new(curve, DiskModel::hdd());
        assert!(t.insert(Point::new([8, 0]), 1).is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn delete_and_update_round_trip() {
        let mut t = table();
        let p = Point::new([5, 5]);
        assert_eq!(t.update(p, 9999).unwrap(), Some(505), "update returns old");
        assert_eq!(t.get(p).unwrap().map(|g| g.value), Some(9999));
        assert_eq!(t.delete(p).unwrap(), Some(9999));
        assert!(t.get(p).unwrap().is_none());
        assert_eq!(t.delete(p).unwrap(), None, "second delete is a no-op");
        assert_eq!(t.len(), 255);
        // Update on a vacant cell inserts.
        assert_eq!(t.update(p, 42).unwrap(), None);
        assert_eq!(t.get(p).unwrap().map(|g| g.value), Some(42));
        assert_eq!(t.len(), 256);
        // Deleted records no longer appear in rectangle queries.
        let q = RectQuery::new([5, 5], [1, 1]).unwrap();
        t.delete(p).unwrap();
        assert!(t
            .query_rect(&q, &QueryOptions::default())
            .unwrap()
            .records
            .is_empty());
        // Out-of-bounds writes are rejected.
        assert!(t.delete(Point::new([99, 0])).is_err());
        assert!(t.update(Point::new([99, 0]), 0).is_err());
    }

    #[test]
    fn sparse_table_returns_subset() {
        let curve = Onion2D::new(16).unwrap();
        let records = vec![
            (Point::new([0, 0]), 1u32),
            (Point::new([5, 5]), 2),
            (Point::new([15, 15]), 3),
            (Point::new([5, 6]), 4),
        ];
        let t = SfcTable::build(curve, records, DiskModel::ssd()).unwrap();
        let q = RectQuery::new([4, 4], [4, 4]).unwrap();
        let res = t.query_rect(&q, &QueryOptions::default()).unwrap();
        let mut vals: Vec<u32> = res.records.iter().map(|r| r.value).collect();
        vals.sort();
        assert_eq!(vals, vec![2, 4]);
    }

    #[test]
    fn rejects_out_of_bounds_build() {
        let curve = Onion2D::new(8).unwrap();
        let res = SfcTable::build(curve, vec![(Point::new([8, 0]), 0u32)], DiskModel::hdd());
        assert!(res.is_err());
    }

    #[test]
    fn full_universe_query_is_one_seek() {
        let t = table();
        let q = RectQuery::new([0, 0], [16, 16]).unwrap();
        let res = t.query_rect(&q, &QueryOptions::default()).unwrap();
        assert_eq!(res.ranges_scanned, 1);
        assert_eq!(res.io.seeks, 1);
        assert_eq!(res.records.len(), 256);
    }

    #[test]
    fn simulated_time_uses_model() {
        let t = table();
        let q = RectQuery::new([1, 1], [6, 6]).unwrap();
        let res = t.query_rect(&q, &QueryOptions::default()).unwrap();
        let time = res.io.time_us(t.model());
        assert!(time > 0.0);
    }

    #[test]
    fn batch_queries_match_individual_queries() {
        let t = table();
        let queries = [
            RectQuery::new([2, 3], [5, 4]).unwrap(),
            RectQuery::new([0, 0], [16, 16]).unwrap(),
            RectQuery::new([7, 7], [2, 2]).unwrap(),
        ];
        let batch = t.query_rect_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, res) in queries.iter().zip(&batch) {
            let single = t.query_rect(q, &QueryOptions::default()).unwrap();
            assert_eq!(res.records, single.records, "{q:?}");
            assert_eq!(res.io, single.io, "{q:?}");
        }
        // A bad query anywhere in the batch fails the whole batch.
        let bad = [RectQuery::new([10, 10], [10, 10]).unwrap()];
        assert!(t.query_rect_batch(&bad).is_err());
    }

    #[test]
    fn get_batch_matches_get() {
        let t = table();
        let probes = [Point::new([3, 7]), Point::new([0, 0]), Point::new([15, 15])];
        let got = t.get_batch(&probes).unwrap();
        assert_eq!(got, vec![Some(307), Some(0), Some(1515)]);
        assert!(t.get_batch(&[Point::new([16, 0])]).is_err());
        // Vacant cells come back as None.
        let sparse: SfcTable<Onion2D, u32, 2> =
            SfcTable::new(Onion2D::new(16).unwrap(), DiskModel::ssd());
        assert_eq!(sparse.get_batch(&probes).unwrap(), vec![None, None, None]);
    }

    #[test]
    fn paged_table_reports_cache_hits() {
        let curve = Onion2D::new(16).unwrap();
        let mut records = Vec::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                records.push((Point::new([x, y]), x * 100 + y));
            }
        }
        let model = DiskModel {
            page_size: 16,
            seek_us: 8_000.0,
            transfer_us: 100.0,
        };
        let t = SfcTable::build_paged(curve, records, model, 64).unwrap();
        let q = RectQuery::new([2, 2], [8, 8]).unwrap();
        let cold = t.query_rect(&q, &QueryOptions::default()).unwrap();
        assert!(cold.io.pages > 0, "cold pool transfers pages");
        let warm = t.query_rect(&q, &QueryOptions::default()).unwrap();
        assert_eq!(warm.records, cold.records);
        assert_eq!(warm.io.pages, 0, "warm pool absorbs every page");
        assert_eq!(warm.io.cache_hits, cold.io.pages + cold.io.cache_hits);
        // Warm queries cost only seeks under the model.
        assert!(warm.io.time_us(t.model()) < cold.io.time_us(t.model()));
    }

    #[test]
    fn coalesced_query_returns_same_records_with_fewer_seeks() {
        let t = table();
        let q = RectQuery::new([2, 2], [10, 5]).unwrap();
        let exact = t.query_rect(&q, &QueryOptions::default()).unwrap();
        let merged = t.query_rect(&q, &QueryOptions::coalesced(16)).unwrap();
        let key = |r: &Record<2, u32>| (r.point, r.value);
        let mut a: Vec<_> = exact.records.iter().map(key).collect();
        let mut b: Vec<_> = merged.records.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "coalescing must not change the result set");
        assert!(merged.io.seeks <= exact.io.seeks);
        assert!(merged.io.entries >= exact.io.entries, "read amplification");
        // An unbounded gap merges everything into one seek.
        let one = t
            .query_rect(&q, &QueryOptions::coalesced(u64::MAX))
            .unwrap();
        assert_eq!(one.io.seeks, 1);
    }

    #[test]
    fn planned_table_query_matches_exact_query() {
        let curve = Onion2D::new(16).unwrap();
        let mut records = Vec::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                records.push((Point::new([x, y]), x * 100 + y));
            }
        }
        let model = DiskModel {
            page_size: 16,
            seek_us: 8_000.0,
            transfer_us: 100.0,
        };
        let t = SfcTable::build_paged(curve, records, model, 64).unwrap();
        assert!((t.density() - 1.0).abs() < 1e-9, "dense table");
        let planner = crate::Planner::new(model);
        for (lo, len) in [
            ([2u32, 3u32], [5u32, 4u32]),
            ([0, 0], [16, 16]),
            ([9, 1], [3, 12]),
        ] {
            let q = RectQuery::new(lo, len).unwrap();
            let exact = t.query_rect(&q, &QueryOptions::default()).unwrap();
            let planned = t.query_rect(&q, &QueryOptions::planned(&planner)).unwrap();
            let plan = planned
                .plan
                .clone()
                .expect("planned query carries its plan");
            assert_eq!(planned.records, exact.records, "{}", plan.explain());
            assert_eq!(planned.io.seeks, plan.ranges.len() as u64);
            assert_eq!(planned.io.entries, exact.io.entries);
        }
        assert!(planner.observed() == 3);
        assert!(t
            .plan_rect(&RectQuery::new([10, 10], [10, 10]).unwrap(), &planner)
            .is_err());
    }

    #[test]
    fn knn_matches_bruteforce() {
        let t = table();
        for center in [Point::new([0, 0]), Point::new([8, 8]), Point::new([15, 3])] {
            for k in [1usize, 4, 10] {
                let got = t.knn(center, k).unwrap();
                assert_eq!(got.len(), k);
                // Brute force distances over the dense grid.
                let mut all: Vec<u64> = (0..16u32)
                    .flat_map(|x| (0..16u32).map(move |y| (x, y)))
                    .map(|(x, y)| {
                        let dx = u64::from(x.abs_diff(center.0[0]));
                        let dy = u64::from(y.abs_diff(center.0[1]));
                        dx * dx + dy * dy
                    })
                    .collect();
                all.sort_unstable();
                let expect: Vec<u64> = all.into_iter().take(k).collect();
                let got_d: Vec<u64> = got.iter().map(|&(_, d2)| d2).collect();
                assert_eq!(got_d, expect, "center {center} k {k}");
            }
        }
    }

    #[test]
    fn knn_on_sparse_table() {
        let curve = Onion2D::new(64).unwrap();
        let records = vec![
            (Point::new([1, 1]), 0u32),
            (Point::new([60, 60]), 1),
            (Point::new([10, 12]), 2),
            (Point::new([11, 12]), 3),
        ];
        let t = SfcTable::build(curve, records, DiskModel::ssd()).unwrap();
        let got = t.knn(Point::new([10, 10]), 2).unwrap();
        let vals: Vec<u32> = got.iter().map(|(r, _)| r.value).collect();
        assert_eq!(vals, vec![2, 3]);
        // Asking for more neighbors than records returns all of them.
        let all = t.knn(Point::new([10, 10]), 99).unwrap();
        assert_eq!(all.len(), 4);
        // k = 0 is a no-op.
        assert!(t.knn(Point::new([1, 1]), 0).unwrap().is_empty());
        // Out-of-bounds centers are rejected.
        assert!(t.knn(Point::new([64, 0]), 1).is_err());
    }
}
