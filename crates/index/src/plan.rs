//! The adaptive query planner: choose how finely a rectangle query is
//! decomposed against the curve, from a cost model fed by live I/O
//! statistics.
//!
//! The paper's clustering number counts the *pieces* a query's curve image
//! decomposes into; Haverkort & van Walderveen observe that the realized
//! cost of a range query is dominated by how that decomposition is executed
//! — every piece costs a seek, every absorbed gap costs extra transfers.
//! The fixed `ranges_of` split is optimal only when seeks and transfers
//! trade at one particular ratio and nothing is cached. The [`Planner`]
//! instead evaluates the whole trade-off curve per query and picks the
//! piece budget with the lowest *expected* cost under what the engine has
//! actually observed.
//!
//! # Cost model
//!
//! For a decomposition of `R` ranges covering `cells` cells with sorted gap
//! prefix sums `gap[·]` (see [`sfc_clustering::gap_profile`]), the
//! estimated cost of executing it with budget `B ≤ R` ranges is
//!
//! ```text
//! cost(B) = B · seek_us                                  // one seek per piece
//!         + pages(B) · (1 − h) · transfer_us             // only pool misses transfer
//! pages(B) = ceil((cells + gap[R − B]) · density / page_size) + B
//! ```
//!
//! where
//!
//! * `seek_us`, `transfer_us`, `page_size` come from the table's
//!   [`DiskModel`];
//! * `density` is the table's record density (records per curve cell), so
//!   spans are converted into expected stored entries before paging;
//! * `+ B` charges each piece its landing page probe;
//! * `h` is the **live cache-hit rate**: the fraction of touched pages the
//!   buffer pool absorbed, accumulated from every [`IoStats`] the planner
//!   [`observe`](Planner::observe)s. A warm pool drives `(1 − h) ·
//!   transfer_us` toward zero, which makes absorbed gap cells nearly free
//!   and pushes the planner toward fewer, larger ranges; a cold or
//!   thrashing pool makes read amplification expensive and pushes it back
//!   toward the exact decomposition.
//!
//! The planner minimizes `cost(B)` over all `B ∈ 1..=R` in `O(R log R)`
//! (sorting the gaps dominates), then materializes the chosen budget via
//! [`sfc_clustering::coalesce_to_budget`]. The two extremes of the
//! candidate set are exactly the strategies a fixed engine would hard-code:
//! `B = R` is the full `ranges_of` split, `B = 1` a single covering range;
//! everything between is gap-coalesced.
//!
//! Sharded execution feeds back through
//! [`observe_shards`](Planner::observe_shards): the planner keeps an
//! exponentially-weighted estimate of per-shard latency skew (critical path
//! ÷ mean), which [`QueryPlan::explain`] reports so operators can see when
//! a hot shard — not the decomposition — bounds query latency.

use crate::disk::{DiskModel, IoStats};
use sfc_clustering::{coalesce_to_budget, covered_cells, gap_profile};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Record density of a table: stored records per curve cell — the
/// `density` input of [`Planner::plan_ranges`]'s cost model (how many
/// entries a scanned key span is expected to yield). May exceed 1 when
/// cells hold duplicate records. The single definition shared by
/// `SfcTable::density` and `ShardedTable::density`.
pub fn record_density(records: usize, cells: u64) -> f64 {
    if cells == 0 {
        0.0
    } else {
        records as f64 / cells as f64
    }
}

/// How a [`QueryPlan`] decided to execute its query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanStrategy {
    /// Scan the exact cluster decomposition (one seek per cluster).
    FullDecomposition,
    /// Scan gap-coalesced ranges: fewer seeks, some non-query cells read.
    Coalesced,
    /// Scan one covering range from the first to the last cluster.
    SingleRange,
}

/// The planner's decision for one rectangle query: the ranges to scan and
/// the model numbers that justified them.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryPlan {
    /// The key ranges to scan, sorted and disjoint.
    pub ranges: Vec<(u64, u64)>,
    /// Size of the full (exact) cluster decomposition — the paper's
    /// clustering number for this query and curve.
    pub clusters: usize,
    /// Non-query cells the chosen ranges absorb (read amplification).
    pub extra_cells: u64,
    /// Cache-hit rate fed into the cost model when this plan was made.
    pub hit_rate: f64,
    /// Estimated cost of the full decomposition, in simulated µs.
    pub est_full_us: f64,
    /// Estimated cost of the chosen ranges, in simulated µs.
    pub est_chosen_us: f64,
    /// Observed per-shard latency skew (critical path ÷ mean) at plan
    /// time; `1.0` for unsharded execution or before any feedback.
    pub shard_skew: f64,
}

impl QueryPlan {
    /// The strategy class this plan falls into.
    pub fn strategy(&self) -> PlanStrategy {
        if self.ranges.len() >= self.clusters {
            PlanStrategy::FullDecomposition
        } else if self.ranges.len() == 1 {
            PlanStrategy::SingleRange
        } else {
            PlanStrategy::Coalesced
        }
    }

    /// Human-readable account of the decision — what `EXPLAIN` prints.
    pub fn explain(&self) -> String {
        format!(
            "{:?}: {} of {} cluster(s), +{} absorbed cell(s); \
             est {:.1}us vs {:.1}us full ({}% of full) \
             [hit rate {:.2}, shard skew {:.2}]",
            self.strategy(),
            self.ranges.len(),
            self.clusters,
            self.extra_cells,
            self.est_chosen_us,
            self.est_full_us,
            if self.est_full_us > 0.0 {
                (100.0 * self.est_chosen_us / self.est_full_us).round() as i64
            } else {
                100
            },
            self.hit_rate,
            self.shard_skew,
        )
    }
}

/// Scale factor storing EWMA floats in atomics (milli-units).
const MILLI: f64 = 1000.0;

/// EWMA weight of each new observation (per mille).
const EWMA_NEW: u64 = 200;

/// Page events (hits + transfers) after which the hit-rate counters are
/// halved, bounding how much history the "live" estimate can cling to.
const HIT_HISTORY_WINDOW: u64 = 1 << 16;

/// Per-sample decay of the latency-calibration sums: each new wall-clock
/// observation discounts all prior ones by this factor, so the fit tracks
/// the medium actually serving queries (cold spinning disk, warm page
/// cache, tmpfs) within a few hundred observations.
const CALIBRATION_DECAY: f64 = 0.99;

/// Decayed sample mass below which [`Planner::measured_costs`] refuses to
/// report rates — a couple of noisy queries must not hijack the model.
const CALIBRATION_MIN_SAMPLES: f64 = 16.0;

/// Decayed least-squares fit of the measured cost model
/// `wall_us ≈ a·seeks + b·pages` over real-I/O queries: the normal
/// equations' sums, exponentially discounted so the fit follows the live
/// medium rather than all of history.
#[derive(Clone, Copy, Debug, Default)]
struct Calibration {
    /// Σ seeks².
    ss: f64,
    /// Σ seeks·pages.
    sp: f64,
    /// Σ pages².
    pp: f64,
    /// Σ seeks·wall.
    sw: f64,
    /// Σ pages·wall.
    pw: f64,
    /// Decayed sample mass.
    samples: f64,
}

impl Calibration {
    fn observe(&mut self, seeks: f64, pages: f64, wall_us: f64) {
        let d = CALIBRATION_DECAY;
        self.ss = self.ss * d + seeks * seeks;
        self.sp = self.sp * d + seeks * pages;
        self.pp = self.pp * d + pages * pages;
        self.sw = self.sw * d + seeks * wall_us;
        self.pw = self.pw * d + pages * wall_us;
        self.samples = self.samples * d + 1.0;
    }

    /// Solves the 2×2 normal equations for `(seek_us, transfer_us)`,
    /// clamped non-negative. `None` until enough samples have arrived;
    /// when the system is degenerate (seeks and pages perfectly
    /// correlated, e.g. every query one sequential run), falls back to a
    /// pages-only fit so the per-page rate is still usable.
    fn rates(&self) -> Option<(f64, f64)> {
        if self.samples < CALIBRATION_MIN_SAMPLES {
            return None;
        }
        let det = self.ss * self.pp - self.sp * self.sp;
        // Relative threshold: the sums' scale grows with observation
        // magnitude, so an absolute epsilon would misclassify either tiny
        // or huge workloads.
        if det > 1e-9 * (self.ss * self.pp).max(1.0) {
            let a = (self.sw * self.pp - self.pw * self.sp) / det;
            let b = (self.pw * self.ss - self.sw * self.sp) / det;
            Some((a.max(0.0), b.max(0.0)))
        } else if self.pp > 0.0 {
            Some((0.0, (self.pw / self.pp).max(0.0)))
        } else {
            None
        }
    }
}

/// An adaptive planner: a cost model plus the live statistics that feed it.
///
/// All state is atomic, so one planner can be shared by any number of
/// concurrently-planning and -observing threads without locking; the
/// statistics it accumulates are the engine's own [`IoStats`], fed back via
/// [`Self::observe`] after every executed plan. See the module docs for
/// the cost model itself.
#[derive(Debug)]
pub struct Planner {
    model: DiskModel,
    /// Lifetime pages served by the buffer pool, across observed queries.
    hits: AtomicU64,
    /// Lifetime pages transferred from the medium.
    pages: AtomicU64,
    /// EWMA of per-shard latency skew (max/mean), in milli-units.
    skew_milli: AtomicU64,
    /// Number of observed queries.
    observed: AtomicU64,
    /// Measured-latency fit over real-I/O queries (the second cost-model
    /// arm, next to the simulated [`DiskModel`] one).
    calibration: Mutex<Calibration>,
}

impl Planner {
    /// A planner pricing plans under `model`, with no history yet (hit
    /// rate starts at zero: assume cold until told otherwise).
    pub fn new(model: DiskModel) -> Self {
        Planner {
            model,
            hits: AtomicU64::new(0),
            pages: AtomicU64::new(0),
            skew_milli: AtomicU64::new(MILLI as u64),
            observed: AtomicU64::new(0),
            calibration: Mutex::new(Calibration::default()),
        }
    }

    /// The disk model pricing this planner's estimates.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Feeds one executed query's statistics back into the hit-rate
    /// estimate.
    ///
    /// History is bounded by exponential forgetting: once the counters
    /// cover a fixed window (`2^16` page events), both are halved — the
    /// ratio (and thus [`Self::hit_rate`]) is unchanged at that instant,
    /// but every future observation carries proportionally more weight,
    /// so a workload shift (pool starts thrashing, or warms up) moves the
    /// estimate within a bounded number of pages instead of `O(lifetime)`.
    /// The halving races with concurrent `fetch_add`s benignly: a lost
    /// increment shifts the estimate by at most one observation.
    pub fn observe(&self, io: &IoStats) {
        let hits = self.hits.fetch_add(io.cache_hits, Ordering::Relaxed) + io.cache_hits;
        let pages = self.pages.fetch_add(io.pages, Ordering::Relaxed) + io.pages;
        if hits + pages > HIT_HISTORY_WINDOW {
            self.hits.store(hits / 2, Ordering::Relaxed);
            self.pages.store(pages / 2, Ordering::Relaxed);
        }
        self.observed.fetch_add(1, Ordering::Relaxed);
    }

    /// Feeds one sharded query's per-shard breakdown into the latency-skew
    /// estimate (EWMA of critical path ÷ mean over involved shards).
    pub fn observe_shards(&self, per_shard: &[IoStats]) {
        let times: Vec<f64> = per_shard
            .iter()
            .filter(|s| s.seeks > 0)
            .map(|s| s.time_us(&self.model))
            .collect();
        if times.is_empty() {
            return;
        }
        let max = times.iter().fold(0.0f64, |a, &b| a.max(b));
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let skew = if mean > 0.0 { max / mean } else { 1.0 };
        let new = (skew * MILLI) as u64;
        // EWMA in integer milli-units; races lose an update, never corrupt.
        let old = self.skew_milli.load(Ordering::Relaxed);
        let blended = (old * (MILLI as u64 - EWMA_NEW) + new * EWMA_NEW) / MILLI as u64;
        self.skew_milli.store(blended, Ordering::Relaxed);
    }

    /// Feeds one real-I/O query's wall-clock latency into the measured
    /// cost model: `seeks` non-contiguous physical fetches and `pages`
    /// physical page reads (`IoStats::real_seeks` / `real_reads`)
    /// explained `wall_us` microseconds of scan time. Once
    /// [`Self::measured_costs`] has enough mass, planning prices budgets
    /// with these *measured* per-seek/per-page rates instead of the
    /// simulated [`DiskModel`] — the table layers call this automatically
    /// for planned queries served by a real page store.
    pub fn observe_latency(&self, seeks: u64, pages: u64, wall_us: f64) {
        if (seeks == 0 && pages == 0) || !wall_us.is_finite() || wall_us < 0.0 {
            return;
        }
        let mut cal = self.calibration.lock().expect("calibration poisoned");
        cal.observe(seeks as f64, pages as f64, wall_us);
    }

    /// The measured `(seek_us, transfer_us)` rates fitted from
    /// [`Self::observe_latency`] feedback, or `None` while the planner is
    /// still running on the simulated [`DiskModel`] (too few decayed
    /// samples to trust a fit).
    pub fn measured_costs(&self) -> Option<(f64, f64)> {
        self.calibration
            .lock()
            .expect("calibration poisoned")
            .rates()
    }

    /// The `(seek_us, transfer_us)` pair pricing plans right now: the
    /// measured fit when calibrated, the simulated model otherwise.
    fn cost_rates(&self) -> (f64, f64) {
        self.measured_costs()
            .unwrap_or((self.model.seek_us, self.model.transfer_us))
    }

    /// The live cache-hit rate estimate in `[0, 1)`: hits over touched
    /// pages, with a +2 Laplace denominator so an unobserved planner
    /// reports 0 instead of dividing by zero.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits.load(Ordering::Relaxed) as f64;
        let pages = self.pages.load(Ordering::Relaxed) as f64;
        hits / (hits + pages + 2.0)
    }

    /// The current per-shard latency-skew estimate (≥ 1).
    pub fn shard_skew(&self) -> f64 {
        self.skew_milli.load(Ordering::Relaxed) as f64 / MILLI
    }

    /// Number of queries observed so far.
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Plans the execution of a query whose exact cluster decomposition is
    /// `full`, for a table storing `density` records per curve cell:
    /// evaluates `cost(B)` for every budget `B` and returns the cheapest
    /// materialized plan. `full` must be sorted and disjoint — what
    /// [`sfc_clustering::ClusterScratch::ranges_of`] produces.
    pub fn plan_ranges(&self, full: &[(u64, u64)], density: f64) -> QueryPlan {
        let clusters = full.len();
        let hit_rate = self.hit_rate();
        let skew = self.shard_skew();
        let rates = self.cost_rates();
        if clusters <= 1 {
            let est = self.estimate_us(
                clusters as u64,
                covered_cells(full),
                0,
                density,
                hit_rate,
                rates,
            );
            return QueryPlan {
                ranges: full.to_vec(),
                clusters,
                extra_cells: 0,
                hit_rate,
                est_full_us: est,
                est_chosen_us: est,
                shard_skew: skew,
            };
        }
        let cells = covered_cells(full);
        let gaps = gap_profile(full);
        let mut best_budget = clusters;
        let mut best_cost = f64::INFINITY;
        for budget in 1..=clusters {
            let extra = gaps[clusters - budget];
            let cost = self.estimate_us(budget as u64, cells, extra, density, hit_rate, rates);
            // `<=` with ascending budgets keeps the largest budget among
            // ties: prefer the exact decomposition when coalescing buys
            // nothing.
            if cost <= best_cost {
                best_cost = cost;
                best_budget = budget;
            }
        }
        let est_full_us = self.estimate_us(clusters as u64, cells, 0, density, hit_rate, rates);
        let ranges = if best_budget == clusters {
            full.to_vec()
        } else {
            coalesce_to_budget(full, best_budget)
        };
        let extra_cells = covered_cells(&ranges) - cells;
        QueryPlan {
            ranges,
            clusters,
            extra_cells,
            hit_rate,
            est_full_us,
            est_chosen_us: best_cost,
            shard_skew: skew,
        }
    }

    /// `cost(B)` of the module docs: seeks plus discounted transfers for a
    /// plan of `budget` ranges covering `cells + extra` cells, priced at
    /// `rates = (seek_us, transfer_us)` — the simulated model's constants
    /// or the measured fit, per [`Self::cost_rates`]. Density may exceed 1
    /// (duplicate records per cell are allowed), in which case a scanned
    /// span yields proportionally more entries.
    fn estimate_us(
        &self,
        budget: u64,
        cells: u64,
        extra: u64,
        density: f64,
        hit_rate: f64,
        rates: (f64, f64),
    ) -> f64 {
        let (seek_us, transfer_us) = rates;
        let entries = (cells + extra) as f64 * density.max(0.0);
        let pages = (entries / self.model.page_size.max(1) as f64).ceil() + budget as f64;
        budget as f64 * seek_us + pages * (1.0 - hit_rate) * transfer_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdd() -> DiskModel {
        DiskModel::hdd()
    }

    #[test]
    fn cold_planner_on_seek_heavy_model_coalesces() {
        // 64 single-cell clusters with tiny gaps: on an HDD (8 ms seek vs
        // 0.1 ms page) the exact decomposition is absurdly seek-bound.
        let ranges: Vec<(u64, u64)> = (0..64u64).map(|i| (i * 3, i * 3)).collect();
        let planner = Planner::new(hdd());
        let plan = planner.plan_ranges(&ranges, 1.0);
        assert!(
            plan.ranges.len() < 64,
            "seek-heavy model must coalesce: {}",
            plan.explain()
        );
        assert!(plan.est_chosen_us < plan.est_full_us);
        assert_eq!(plan.clusters, 64);
        // Coverage is preserved.
        for &(lo, hi) in &ranges {
            assert!(plan.ranges.iter().any(|&(plo, phi)| plo <= lo && hi <= phi));
        }
    }

    #[test]
    fn transfer_heavy_model_keeps_the_exact_decomposition() {
        // Two clusters separated by a huge gap, with seeks nearly free:
        // absorbing the gap can only lose.
        let model = DiskModel {
            page_size: 4,
            seek_us: 1.0,
            transfer_us: 1000.0,
        };
        let ranges = [(0u64, 3u64), (100_000, 100_003)];
        let planner = Planner::new(model);
        let plan = planner.plan_ranges(&ranges, 1.0);
        assert_eq!(plan.ranges, ranges.to_vec(), "{}", plan.explain());
        assert_eq!(plan.strategy(), PlanStrategy::FullDecomposition);
        assert_eq!(plan.extra_cells, 0);
    }

    #[test]
    fn warm_pool_feedback_shifts_the_plan_toward_fewer_seeks() {
        // A mildly transfer-priced model where gaps are borderline: cold,
        // the planner keeps pieces; after observing a high hit rate,
        // transfers become nearly free and it coalesces further.
        let model = DiskModel {
            page_size: 8,
            seek_us: 400.0,
            transfer_us: 100.0,
        };
        let ranges: Vec<(u64, u64)> = (0..16u64).map(|i| (i * 64, i * 64 + 7)).collect();
        let planner = Planner::new(model);
        let cold = planner.plan_ranges(&ranges, 1.0);
        // Observe a long warm history: almost every page a hit.
        planner.observe(&IoStats {
            seeks: 100,
            pages: 10,
            cache_hits: 10_000,
            ..IoStats::default()
        });
        let warm = planner.plan_ranges(&ranges, 1.0);
        assert!(planner.hit_rate() > 0.95);
        assert!(
            warm.ranges.len() < cold.ranges.len(),
            "warm {} vs cold {}",
            warm.explain(),
            cold.explain()
        );
    }

    #[test]
    fn density_discounts_sparse_tables() {
        // Same geometry, sparse table: far fewer expected entries per
        // span, so absorbing gaps is cheaper and the plan coalesces more.
        let model = DiskModel {
            page_size: 8,
            seek_us: 500.0,
            transfer_us: 120.0,
        };
        let ranges: Vec<(u64, u64)> = (0..16u64).map(|i| (i * 640, i * 640 + 63)).collect();
        let planner = Planner::new(model);
        let dense = planner.plan_ranges(&ranges, 1.0);
        let sparse = planner.plan_ranges(&ranges, 0.01);
        assert!(
            sparse.ranges.len() <= dense.ranges.len(),
            "sparse {} vs dense {}",
            sparse.explain(),
            dense.explain()
        );
        assert!(sparse.ranges.len() < 16);
    }

    #[test]
    fn cost_ties_keep_the_exact_decomposition() {
        // Merging here saves one seek (100) and one probe page (100) but
        // adds two gap pages (200): an exact tie. The planner must keep
        // the full decomposition rather than absorb cells for nothing.
        let model = DiskModel {
            page_size: 1,
            seek_us: 100.0,
            transfer_us: 100.0,
        };
        let ranges = [(0u64, 0u64), (3, 3)];
        let planner = Planner::new(model);
        let plan = planner.plan_ranges(&ranges, 1.0);
        assert_eq!(plan.ranges, ranges.to_vec(), "{}", plan.explain());
        assert!((plan.est_chosen_us - plan.est_full_us).abs() < 1e-9);
    }

    #[test]
    fn hit_rate_forgets_stale_history() {
        let planner = Planner::new(hdd());
        // A long warm history: ~1M hit events (far past the window).
        for _ in 0..64 {
            planner.observe(&IoStats {
                seeks: 1,
                pages: 10,
                cache_hits: 16_000,
                ..IoStats::default()
            });
        }
        assert!(planner.hit_rate() > 0.95);
        // The workload shifts: the pool thrashes, every page misses. A
        // bounded number of observations must drag the estimate down —
        // with lifetime counters it would take ~1M miss pages to halve.
        for _ in 0..16 {
            planner.observe(&IoStats {
                seeks: 1,
                pages: 16_000,
                ..IoStats::default()
            });
        }
        assert!(
            planner.hit_rate() < 0.3,
            "stale warmth must decay: {}",
            planner.hit_rate()
        );
    }

    #[test]
    fn duplicate_heavy_density_raises_transfer_cost() {
        // Density > 1 (duplicate records per cell) must scale expected
        // entries up, not be clamped to 1: absorbing gaps gets *more*
        // expensive, so the plan keeps at least as many pieces.
        let model = DiskModel {
            page_size: 8,
            seek_us: 400.0,
            transfer_us: 100.0,
        };
        let ranges: Vec<(u64, u64)> = (0..16u64).map(|i| (i * 64, i * 64 + 7)).collect();
        let planner = Planner::new(model);
        let unit = planner.plan_ranges(&ranges, 1.0);
        let dup_heavy = planner.plan_ranges(&ranges, 8.0);
        assert!(
            dup_heavy.ranges.len() >= unit.ranges.len(),
            "dup-heavy {} vs unit {}",
            dup_heavy.explain(),
            unit.explain()
        );
        assert!(dup_heavy.est_full_us > unit.est_full_us);
    }

    #[test]
    fn trivial_and_single_cluster_plans_pass_through() {
        let planner = Planner::new(hdd());
        let empty = planner.plan_ranges(&[], 1.0);
        assert!(empty.ranges.is_empty());
        assert_eq!(empty.clusters, 0);
        let one = planner.plan_ranges(&[(5, 9)], 0.5);
        assert_eq!(one.ranges, vec![(5, 9)]);
        assert_eq!(one.strategy(), PlanStrategy::FullDecomposition);
        assert!(one.explain().contains("1 of 1"));
    }

    #[test]
    fn measured_latency_fit_recovers_the_true_rates() {
        let planner = Planner::new(hdd());
        assert!(planner.measured_costs().is_none(), "uncalibrated at birth");
        // Synthesize queries against a medium where a seek really costs
        // 500 µs and a page 20 µs; vary the mix so the 2×2 system is
        // well-conditioned.
        for i in 1..=40u64 {
            let seeks = 1 + (i % 7);
            let pages = 2 + (i * 3) % 29;
            let wall = seeks as f64 * 500.0 + pages as f64 * 20.0;
            planner.observe_latency(seeks, pages, wall);
        }
        let (seek_us, transfer_us) = planner.measured_costs().expect("calibrated");
        assert!((seek_us - 500.0).abs() < 1.0, "seek fit {seek_us}");
        assert!(
            (transfer_us - 20.0).abs() < 1.0,
            "transfer fit {transfer_us}"
        );
        // The fit, not the simulated HDD constants, now prices plans: the
        // full decomposition of 64 single-cell clusters costs 64 measured
        // seeks (~32 ms), not 64 simulated 8 ms seeks (~512 ms).
        let ranges: Vec<(u64, u64)> = (0..64u64).map(|i| (i * 3, i * 3)).collect();
        let plan = planner.plan_ranges(&ranges, 1.0);
        assert!(
            plan.est_full_us < 64.0 * 1000.0,
            "must be priced at measured rates: {}",
            plan.explain()
        );
        assert!(plan.est_full_us > 64.0 * 400.0, "{}", plan.explain());
        // Degenerate and junk observations are rejected, not absorbed.
        planner.observe_latency(0, 0, 1.0);
        planner.observe_latency(1, 1, f64::NAN);
        let (s2, t2) = planner.measured_costs().expect("still calibrated");
        assert!((s2 - seek_us).abs() < 1e-9 && (t2 - transfer_us).abs() < 1e-9);
    }

    #[test]
    fn pages_only_workload_degrades_to_a_transfer_fit() {
        let planner = Planner::new(hdd());
        // Every observation is one sequential run: seeks ∝ pages is rank
        // deficient... but here seeks are constant 1 while pages vary, so
        // use a truly proportional mix to hit the degenerate arm.
        for _ in 0..40 {
            planner.observe_latency(2, 10, 2.0 * 100.0 + 10.0 * 50.0);
        }
        let (_, transfer_us) = planner.measured_costs().expect("calibrated");
        // The pages-only fallback folds the seek cost into the per-page
        // rate: 700 µs over 10 pages.
        assert!(transfer_us > 0.0);
    }

    #[test]
    fn shard_skew_tracks_imbalance() {
        let planner = Planner::new(hdd());
        assert!((planner.shard_skew() - 1.0).abs() < 1e-9);
        // One hot shard, three idle-ish ones, repeatedly observed.
        let hot = IoStats {
            seeks: 10,
            pages: 100,
            ..IoStats::default()
        };
        let cool = IoStats {
            seeks: 1,
            pages: 1,
            ..IoStats::default()
        };
        for _ in 0..50 {
            planner.observe_shards(&[hot, cool, cool, cool]);
        }
        assert!(planner.shard_skew() > 1.5, "skew {}", planner.shard_skew());
        // Untouched shards (zero seeks) are excluded from the mean.
        planner.observe_shards(&[IoStats::default(); 4]);
        assert!(planner.shard_skew() > 1.5);
    }
}
