//! Range partitioning along a space-filling curve.
//!
//! §I of the paper cites distributed partitioning of spatial data and load
//! balancing in parallel simulations as SFC applications: the curve
//! linearizes the grid, and contiguous index ranges become partitions. Good
//! clustering keeps each partition spatially coherent, which shrinks the
//! cross-partition neighbor surface ("communication volume").

use onion_core::{Point, SpaceFillingCurve};

/// A contiguous curve-index range assigned to one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Worker id, `0..k`.
    pub worker: usize,
    /// First curve index (inclusive).
    pub lo: u64,
    /// Last curve index (inclusive).
    pub hi: u64,
}

/// Splits the whole universe into `k` contiguous curve ranges of (almost)
/// equal cell count.
pub fn partition_universe<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    k: usize,
) -> Vec<Partition> {
    assert!(k >= 1, "need at least one worker");
    let n = curve.universe().cell_count();
    let k64 = k as u64;
    let base = n / k64;
    let extra = n % k64; // first `extra` workers get one more cell
    let mut out = Vec::with_capacity(k);
    let mut lo = 0u64;
    for worker in 0..k {
        let size = base + u64::from((worker as u64) < extra);
        if size == 0 {
            break;
        }
        out.push(Partition {
            worker,
            lo,
            hi: lo + size - 1,
        });
        lo += size;
    }
    out
}

/// The worker owning a given cell under the partitioning, or `None` if the
/// cell's curve index is not covered by `parts` (possible when `parts` is a
/// truncated or hand-built partitioning rather than a full
/// [`partition_universe`] result).
pub fn try_owner_of<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    parts: &[Partition],
    p: Point<D>,
) -> Option<usize> {
    let idx = curve.index_unchecked(p);
    let pos = parts.partition_point(|part| part.hi < idx);
    (pos < parts.len() && parts[pos].lo <= idx).then(|| parts[pos].worker)
}

/// The worker owning a given cell under the partitioning.
///
/// # Panics
/// If the cell's curve index is not covered by `parts` — in every build
/// profile, with a message naming the point and index (the previous
/// `debug_assert!` vanished in release builds, leaving an opaque
/// out-of-bounds index panic). Use [`try_owner_of`] to handle gaps without
/// panicking.
pub fn owner_of<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    parts: &[Partition],
    p: Point<D>,
) -> usize {
    try_owner_of(curve, parts, p).unwrap_or_else(|| {
        panic!(
            "owner_of: point {p} (curve index {}) is not covered by the {} given partition(s)",
            curve.index_unchecked(p),
            parts.len()
        )
    })
}

/// Communication metrics of a partitioning: for each grid edge between
/// cells owned by different workers, one unit of cross-traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionMetrics {
    /// Grid-neighbor pairs owned by different workers (each pair counted
    /// once).
    pub cut_edges: u64,
    /// Cells with at least one remote neighbor.
    pub surface_cells: u64,
    /// Largest partition size minus smallest (cell-count imbalance).
    pub imbalance: u64,
}

/// Evaluates a partitioning by walking every grid edge once.
///
/// `O(n · D)` — intended for moderate universes (the experiments use sides
/// up to a few hundred).
pub fn evaluate_partitioning<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    parts: &[Partition],
) -> PartitionMetrics {
    let u = curve.universe();
    let side = u.side();
    let mut cut = 0u64;
    let mut surface = 0u64;
    let mut sizes = vec![0u64; parts.len()];
    for p in u.iter_cells() {
        let w = owner_of(curve, parts, p);
        sizes[w] += 1;
        let mut is_surface = false;
        // Count each undirected edge once via the +1 directions.
        for d in 0..D {
            if let Some(nb) = p.step(d, 1, side) {
                if owner_of(curve, parts, nb) != w {
                    cut += 1;
                    is_surface = true;
                }
            }
            // A remote neighbor in the −1 direction also makes this a
            // surface cell even though the edge was counted from the other
            // side.
            if !is_surface {
                if let Some(nb) = p.step(d, -1, side) {
                    if owner_of(curve, parts, nb) != w {
                        is_surface = true;
                    }
                }
            }
        }
        if is_surface {
            surface += 1;
        }
    }
    let max = sizes.iter().copied().max().unwrap_or(0);
    let min = sizes.iter().copied().min().unwrap_or(0);
    PartitionMetrics {
        cut_edges: cut,
        surface_cells: surface,
        imbalance: max - min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::Onion2D;

    #[test]
    fn partitions_cover_universe_without_gaps() {
        let o = Onion2D::new(8).unwrap();
        for k in [1usize, 2, 3, 7, 64] {
            let parts = partition_universe(&o, k);
            assert_eq!(parts[0].lo, 0);
            assert_eq!(parts.last().unwrap().hi, 63);
            for w in parts.windows(2) {
                assert_eq!(w[1].lo, w[0].hi + 1, "gap between partitions");
            }
            // Balance: sizes differ by at most 1.
            let sizes: Vec<u64> = parts.iter().map(|p| p.hi - p.lo + 1).collect();
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(max - min <= 1, "k={k}: sizes {sizes:?}");
        }
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let o = Onion2D::new(2).unwrap();
        let parts = partition_universe(&o, 10);
        assert_eq!(parts.len(), 4);
        let total: u64 = parts.iter().map(|p| p.hi - p.lo + 1).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn owner_lookup_matches_ranges() {
        let o = Onion2D::new(8).unwrap();
        let parts = partition_universe(&o, 4);
        for p in o.universe().iter_cells() {
            let idx = o.index_unchecked(p);
            let w = owner_of(&o, &parts, p);
            assert!(parts[w].lo <= idx && idx <= parts[w].hi);
        }
    }

    #[test]
    fn uncovered_points_are_reported_clearly() {
        let o = Onion2D::new(8).unwrap();
        let mut parts = partition_universe(&o, 4);
        parts.pop(); // drop the last quarter of the curve
        let covered = o.point_unchecked(0);
        let uncovered = o.point_unchecked(63);
        assert_eq!(try_owner_of(&o, &parts, covered), Some(0));
        assert_eq!(try_owner_of(&o, &parts, uncovered), None);
        let err = std::panic::catch_unwind(|| owner_of(&o, &parts, uncovered))
            .expect_err("must panic in every build profile");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("not covered"), "opaque panic: {msg}");
    }

    #[test]
    fn metrics_single_worker_has_no_cut() {
        let o = Onion2D::new(8).unwrap();
        let parts = partition_universe(&o, 1);
        let m = evaluate_partitioning(&o, &parts);
        assert_eq!(m.cut_edges, 0);
        assert_eq!(m.surface_cells, 0);
        assert_eq!(m.imbalance, 0);
    }

    #[test]
    fn metrics_detect_cut_edges() {
        let o = Onion2D::new(8).unwrap();
        let parts = partition_universe(&o, 4);
        let m = evaluate_partitioning(&o, &parts);
        assert!(m.cut_edges > 0);
        assert!(m.surface_cells > 0);
        assert!(m.imbalance <= 1);
    }
}
