//! An in-memory B+-tree keyed by `u64` SFC indexes.
//!
//! Written from scratch for this workspace: fixed fanout, leaves linked for
//! range scans, bulk loading from sorted input, and insertion with node
//! splits. It is the storage engine the range-decomposition experiments run
//! against; leaf visits map one-to-one onto simulated disk pages.

/// Maximum number of keys per node (fanout − 1 for internals). Chosen so a
/// leaf of `(u64, u64)` entries is roughly a 4 KiB page.
pub const DEFAULT_NODE_CAPACITY: usize = 256;

#[derive(Debug)]
enum Node<V> {
    Leaf {
        keys: Vec<u64>,
        values: Vec<V>,
        /// Index of the next leaf in `BPlusTree::leaves_order`, if any.
        next: Option<usize>,
    },
    Internal {
        /// `separators[i]` is the smallest key reachable under
        /// `children[i + 1]`.
        separators: Vec<u64>,
        children: Vec<usize>,
    },
}

/// A B+-tree mapping `u64` keys to values, duplicates allowed.
///
/// ```
/// use sfc_index::BPlusTree;
///
/// let mut t = BPlusTree::new(4);
/// for k in [5u64, 1, 9, 7, 3] {
///     t.insert(k, k * 10);
/// }
/// assert_eq!(t.get(7), Some(&70));
/// let range: Vec<_> = t.range(3, 7).map(|(k, _)| k).collect();
/// assert_eq!(range, vec![3, 5, 7]);
/// ```
#[derive(Debug)]
pub struct BPlusTree<V> {
    nodes: Vec<Node<V>>,
    root: usize,
    len: usize,
    capacity: usize,
    /// Statistics: leaf nodes visited by `range` calls (page reads).
    leaf_visits: std::cell::Cell<u64>,
}

impl<V> BPlusTree<V> {
    /// Creates an empty tree with the given node capacity (≥ 2).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "node capacity must be at least 2");
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
            capacity,
            leaf_visits: std::cell::Cell::new(0),
        }
    }

    /// Bulk-loads a tree from entries sorted ascending by key.
    ///
    /// # Panics
    /// If the input is not sorted.
    pub fn bulk_load(entries: Vec<(u64, V)>, capacity: usize) -> Self {
        assert!(capacity >= 2);
        assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_load requires sorted input"
        );
        if entries.is_empty() {
            return Self::new(capacity);
        }
        let len = entries.len();
        let mut nodes: Vec<Node<V>> = Vec::new();
        // Build leaves left to right.
        let mut level: Vec<(u64, usize)> = Vec::new(); // (min key, node id)
        let per_leaf = capacity;
        let mut iter = entries.into_iter().peekable();
        while iter.peek().is_some() {
            let mut keys = Vec::with_capacity(per_leaf);
            let mut values = Vec::with_capacity(per_leaf);
            for _ in 0..per_leaf {
                match iter.next() {
                    Some((k, v)) => {
                        keys.push(k);
                        values.push(v);
                    }
                    None => break,
                }
            }
            let id = nodes.len();
            let min = keys[0];
            nodes.push(Node::Leaf {
                keys,
                values,
                next: None,
            });
            if let Some(&(_, prev)) = level.last() {
                if let Node::Leaf { next, .. } = &mut nodes[prev] {
                    *next = Some(id);
                }
            }
            level.push((min, id));
        }
        // Build internal levels bottom-up.
        while level.len() > 1 {
            let mut upper: Vec<(u64, usize)> = Vec::new();
            for chunk in level.chunks(capacity) {
                let id = nodes.len();
                let separators = chunk[1..].iter().map(|&(k, _)| k).collect();
                let children = chunk.iter().map(|&(_, c)| c).collect();
                nodes.push(Node::Internal {
                    separators,
                    children,
                });
                upper.push((chunk[0].0, id));
            }
            level = upper;
        }
        let root = level[0].1;
        BPlusTree {
            nodes,
            root,
            len,
            capacity,
            leaf_visits: std::cell::Cell::new(0),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of leaf pages visited by range scans since construction
    /// (the simulated "pages read" counter).
    pub fn leaf_visits(&self) -> u64 {
        self.leaf_visits.get()
    }

    /// Resets the leaf-visit counter.
    pub fn reset_leaf_visits(&self) {
        self.leaf_visits.set(0);
    }

    /// Tree height (1 for a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    id = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Descends to a leaf. With `leftmost`, routes to the leftmost leaf that
    /// can hold `key` (correct start for range scans over duplicate keys);
    /// otherwise to the rightmost (where a point insert/lookup lands).
    fn find_leaf(&self, key: u64, leftmost: bool) -> usize {
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf { .. } => return id,
                Node::Internal {
                    separators,
                    children,
                } => {
                    let pos = if leftmost {
                        separators.partition_point(|&s| s < key)
                    } else {
                        separators.partition_point(|&s| s <= key)
                    };
                    id = children[pos];
                }
            }
        }
    }

    /// Looks up a value stored under `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        let leaf = self.find_leaf(key, false);
        let Node::Leaf { keys, values, .. } = &self.nodes[leaf] else {
            unreachable!()
        };
        let pos = keys.partition_point(|&k| k < key);
        if pos < keys.len() && keys[pos] == key {
            Some(&values[pos])
        } else {
            None
        }
    }

    /// Inserts an entry (duplicates allowed, kept in insertion order among
    /// equal keys).
    pub fn insert(&mut self, key: u64, value: V) {
        self.len += 1;
        if let Some((sep, right)) = self.insert_rec(self.root, key, value) {
            // Root split: grow the tree by one level.
            let new_root = self.nodes.len();
            let old_root = self.root;
            self.nodes.push(Node::Internal {
                separators: vec![sep],
                children: vec![old_root, right],
            });
            self.root = new_root;
        }
    }

    /// Returns `Some((separator, new_node_id))` when the child split.
    fn insert_rec(&mut self, id: usize, key: u64, value: V) -> Option<(u64, usize)> {
        match &mut self.nodes[id] {
            Node::Leaf { keys, values, next } => {
                let pos = keys.partition_point(|&k| k <= key);
                keys.insert(pos, key);
                values.insert(pos, value);
                if keys.len() <= self.capacity {
                    return None;
                }
                // Split leaf: move the upper half into a new right sibling.
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_values = values.split_off(mid);
                let sep = right_keys[0];
                let old_next = *next;
                let right_id = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    keys: right_keys,
                    values: right_values,
                    next: old_next,
                });
                let Node::Leaf { next, .. } = &mut self.nodes[id] else {
                    unreachable!()
                };
                *next = Some(right_id);
                Some((sep, right_id))
            }
            Node::Internal {
                separators,
                children,
            } => {
                let pos = separators.partition_point(|&s| s <= key);
                let child = children[pos];
                let split = self.insert_rec(child, key, value)?;
                let Node::Internal {
                    separators,
                    children,
                } = &mut self.nodes[id]
                else {
                    unreachable!()
                };
                separators.insert(pos, split.0);
                children.insert(pos + 1, split.1);
                if separators.len() <= self.capacity {
                    return None;
                }
                // Split internal node.
                let mid = separators.len() / 2;
                let sep_up = separators[mid];
                let right_seps = separators.split_off(mid + 1);
                separators.pop(); // sep_up moves up
                let right_children = children.split_off(mid + 1);
                let right_id = self.nodes.len();
                self.nodes.push(Node::Internal {
                    separators: right_seps,
                    children: right_children,
                });
                Some((sep_up, right_id))
            }
        }
    }

    /// Iterates entries with keys in `lo..=hi`, ascending. Counts one leaf
    /// visit per touched leaf page.
    pub fn range(&self, lo: u64, hi: u64) -> RangeIter<'_, V> {
        let leaf = self.find_leaf(lo, true);
        let Node::Leaf { keys, .. } = &self.nodes[leaf] else {
            unreachable!()
        };
        let pos = keys.partition_point(|&k| k < lo);
        if !keys.is_empty() {
            self.leaf_visits.set(self.leaf_visits.get() + 1);
        }
        RangeIter {
            tree: self,
            leaf,
            pos,
            hi,
        }
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> RangeIter<'_, V> {
        self.range(0, u64::MAX)
    }

    /// Validates structural invariants (sorted keys, separator consistency,
    /// linked leaves cover all entries in order). Test helper.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Every leaf's keys are sorted; the leaf chain yields a global
        // sorted sequence of exactly `len` keys.
        let mut count = 0usize;
        let mut last: Option<u64> = None;
        for (k, _) in self.iter() {
            if let Some(prev) = last {
                if k < prev {
                    return Err(format!("keys out of order: {prev} then {k}"));
                }
            }
            last = Some(k);
            count += 1;
        }
        if count != self.len {
            return Err(format!(
                "leaf chain has {count} entries, len is {}",
                self.len
            ));
        }
        self.check_node(self.root, None, None)
    }

    fn check_node(&self, id: usize, lo: Option<u64>, hi: Option<u64>) -> Result<(), String> {
        match &self.nodes[id] {
            Node::Leaf { keys, .. } => {
                for &k in keys {
                    // With duplicates, a left sibling may hold keys equal to
                    // the separator, so the upper bound is non-strict.
                    if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k > h) {
                        return Err(format!("leaf key {k} outside ({lo:?}, {hi:?})"));
                    }
                }
                Ok(())
            }
            Node::Internal {
                separators,
                children,
            } => {
                if children.len() != separators.len() + 1 {
                    return Err("child/separator arity mismatch".into());
                }
                if !separators.windows(2).all(|w| w[0] <= w[1]) {
                    return Err("separators out of order".into());
                }
                for (i, &child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(separators[i - 1]) };
                    let chi = if i == separators.len() {
                        hi
                    } else {
                        Some(separators[i])
                    };
                    self.check_node(child, clo, chi)?;
                }
                Ok(())
            }
        }
    }
}

/// Iterator over a key range of a [`BPlusTree`].
pub struct RangeIter<'a, V> {
    tree: &'a BPlusTree<V>,
    leaf: usize,
    pos: usize,
    hi: u64,
}

impl<'a, V> Iterator for RangeIter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<(u64, &'a V)> {
        loop {
            let Node::Leaf {
                keys, values, next, ..
            } = &self.tree.nodes[self.leaf]
            else {
                unreachable!()
            };
            if self.pos < keys.len() {
                let k = keys[self.pos];
                if k > self.hi {
                    return None;
                }
                let v = &values[self.pos];
                self.pos += 1;
                return Some((k, v));
            }
            let nxt = (*next)?;
            self.leaf = nxt;
            self.pos = 0;
            self.tree.leaf_visits.set(self.tree.leaf_visits.get() + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<u32> = BPlusTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert_eq!(t.range(0, 100).count(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_get_with_splits() {
        let mut t = BPlusTree::new(4);
        for k in 0..1000u64 {
            t.insert(k * 7 % 1000, k);
        }
        assert_eq!(t.len(), 1000);
        t.check_invariants().unwrap();
        assert!(t.height() > 2, "splits must have grown the tree");
        for k in [0u64, 1, 499, 999] {
            assert!(t.get(k).is_some(), "missing key {k}");
        }
        assert_eq!(t.get(1000), None);
    }

    #[test]
    fn range_scan_is_sorted_and_complete() {
        let mut t = BPlusTree::new(8);
        for k in (0..500u64).rev() {
            t.insert(k, ());
        }
        let got: Vec<u64> = t.range(100, 199).map(|(k, _)| k).collect();
        let expect: Vec<u64> = (100..=199).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = BPlusTree::new(4);
        for i in 0..10u64 {
            t.insert(42, i);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.range(42, 42).count(), 10);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let entries: Vec<(u64, u64)> = (0..777u64).map(|k| (k * 3, k)).collect();
        let bulk = BPlusTree::bulk_load(entries.clone(), 16);
        bulk.check_invariants().unwrap();
        let mut inc = BPlusTree::new(16);
        for (k, v) in entries {
            inc.insert(k, v);
        }
        let a: Vec<_> = bulk.iter().map(|(k, &v)| (k, v)).collect();
        let b: Vec<_> = inc.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn bulk_load_rejects_unsorted() {
        let _ = BPlusTree::bulk_load(vec![(3u64, ()), (1, ())], 4);
    }

    #[test]
    fn leaf_visits_count_pages() {
        let entries: Vec<(u64, ())> = (0..256u64).map(|k| (k, ())).collect();
        let t = BPlusTree::bulk_load(entries, 16); // 16 leaves
        t.reset_leaf_visits();
        let n = t.range(0, 255).count();
        assert_eq!(n, 256);
        assert_eq!(t.leaf_visits(), 16);
        // A scan ending strictly inside a page stops there: one visit.
        t.reset_leaf_visits();
        let n = t.range(0, 14).count();
        assert_eq!(n, 15);
        assert_eq!(t.leaf_visits(), 1);
        // A scan ending exactly on a page boundary must peek at the next
        // page (duplicates of the bound could continue there): two visits.
        t.reset_leaf_visits();
        let n = t.range(0, 15).count();
        assert_eq!(n, 16);
        assert_eq!(t.leaf_visits(), 2);
    }

    #[test]
    fn range_outside_keyspace_is_empty() {
        let t = BPlusTree::bulk_load(vec![(10u64, ()), (20, ())], 4);
        assert_eq!(t.range(30, 40).count(), 0);
        assert_eq!(t.range(0, 5).count(), 0);
        assert_eq!(t.range(10, 20).count(), 2);
    }
}
