//! An in-memory B+-tree keyed by `u64` SFC indexes.
//!
//! Written from scratch for this workspace: fixed fanout, leaves linked for
//! range scans, bulk loading from sorted input, insertion with node splits,
//! and (lazy) removal. It is the storage engine the range-decomposition
//! experiments run against; leaf visits map one-to-one onto simulated disk
//! pages.
//!
//! All read paths take `&self` and report page counts per call (on
//! [`RangeIter::pages`] or through [`BPlusTree::scan_range`]'s page
//! callback), so a shared tree can serve concurrent scans without interior
//! mutability — the property the sharded table layer builds on.
//!
//! Pages are copy-on-write: the arena holds `Arc<Node>` slots, so cloning a
//! tree is O(pages) pointer copies and mutating a clone copies only the
//! nodes on the actually-written path ([`Arc::make_mut`]). Two versions of
//! a tree share every page neither has touched, which is what makes
//! epoch-stamped table versions affordable — see the MVCC section of
//! `docs/ARCHITECTURE.md`. Arena indices (node ids, leaf `next` links) are
//! preserved across clones because a clone never reorders the arena, so
//! page ids stay stable across a linear version history.

use std::ops::Deref;
use std::sync::Arc;

/// Maximum number of keys per node (fanout − 1 for internals). Chosen so a
/// leaf of `(u64, u64)` entries is roughly a 4 KiB page.
pub const DEFAULT_NODE_CAPACITY: usize = 256;

#[derive(Debug, Clone)]
enum Node<V> {
    Leaf {
        keys: Vec<u64>,
        values: Vec<V>,
        /// Index of the next leaf in `BPlusTree::leaves_order`, if any.
        next: Option<usize>,
    },
    Internal {
        /// `separators[i]` is the smallest key reachable under
        /// `children[i + 1]`.
        separators: Vec<u64>,
        children: Vec<usize>,
    },
}

/// A B+-tree mapping `u64` keys to values, duplicates allowed.
///
/// ```
/// use sfc_index::BPlusTree;
///
/// let mut t = BPlusTree::new(4);
/// for k in [5u64, 1, 9, 7, 3] {
///     t.insert(k, k * 10);
/// }
/// assert_eq!(t.get(7), Some(&70));
/// let range: Vec<_> = t.range(3, 7).map(|(k, _)| k).collect();
/// assert_eq!(range, vec![3, 5, 7]);
/// ```
#[derive(Debug)]
pub struct BPlusTree<V> {
    nodes: Vec<Arc<Node<V>>>,
    root: usize,
    len: usize,
    capacity: usize,
}

/// Cloning is an O(pages) *fork*, not a deep copy: the new tree shares
/// every page with the original, and subsequent mutations on either side
/// copy only the pages they actually write (path copying via
/// [`Arc::make_mut`]). This is deliberately implemented by hand rather than
/// derived so it needs no `V: Clone` bound — forking never touches values.
impl<V> Clone for BPlusTree<V> {
    fn clone(&self) -> Self {
        BPlusTree {
            nodes: self.nodes.clone(),
            root: self.root,
            len: self.len,
            capacity: self.capacity,
        }
    }
}

impl<V> BPlusTree<V> {
    /// Creates an empty tree with the given node capacity (≥ 2).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "node capacity must be at least 2");
        BPlusTree {
            nodes: vec![Arc::new(Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
                next: None,
            })],
            root: 0,
            len: 0,
            capacity,
        }
    }

    /// Bulk-loads a tree from entries sorted ascending by key.
    ///
    /// # Panics
    /// If the input is not sorted.
    pub fn bulk_load(entries: Vec<(u64, V)>, capacity: usize) -> Self {
        assert!(capacity >= 2);
        assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_load requires sorted input"
        );
        if entries.is_empty() {
            return Self::new(capacity);
        }
        let len = entries.len();
        let mut nodes: Vec<Arc<Node<V>>> = Vec::new();
        // Build leaves left to right.
        let mut level: Vec<(u64, usize)> = Vec::new(); // (min key, node id)
        let per_leaf = capacity;
        let mut iter = entries.into_iter().peekable();
        while iter.peek().is_some() {
            let mut keys = Vec::with_capacity(per_leaf);
            let mut values = Vec::with_capacity(per_leaf);
            for _ in 0..per_leaf {
                match iter.next() {
                    Some((k, v)) => {
                        keys.push(k);
                        values.push(v);
                    }
                    None => break,
                }
            }
            let id = nodes.len();
            let min = keys[0];
            nodes.push(Arc::new(Node::Leaf {
                keys,
                values,
                next: None,
            }));
            if let Some(&(_, prev)) = level.last() {
                // Freshly built nodes are unshared, so this never clones.
                let prev_node = Arc::get_mut(&mut nodes[prev]).expect("fresh node is unique");
                if let Node::Leaf { next, .. } = prev_node {
                    *next = Some(id);
                }
            }
            level.push((min, id));
        }
        // Build internal levels bottom-up.
        while level.len() > 1 {
            let mut upper: Vec<(u64, usize)> = Vec::new();
            for chunk in level.chunks(capacity) {
                let id = nodes.len();
                let separators = chunk[1..].iter().map(|&(k, _)| k).collect();
                let children = chunk.iter().map(|&(_, c)| c).collect();
                nodes.push(Arc::new(Node::Internal {
                    separators,
                    children,
                }));
                upper.push((chunk[0].0, id));
            }
            level = upper;
        }
        let root = level[0].1;
        BPlusTree {
            nodes,
            root,
            len,
            capacity,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 for a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &*self.nodes[id] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    id = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Descends to a leaf. With `leftmost`, routes to the leftmost leaf that
    /// can hold `key` (correct start for range scans over duplicate keys);
    /// otherwise to the rightmost (where a point insert/lookup lands).
    fn find_leaf(&self, key: u64, leftmost: bool) -> usize {
        let mut id = self.root;
        loop {
            match &*self.nodes[id] {
                Node::Leaf { .. } => return id,
                Node::Internal {
                    separators,
                    children,
                } => {
                    let pos = if leftmost {
                        separators.partition_point(|&s| s < key)
                    } else {
                        separators.partition_point(|&s| s <= key)
                    };
                    id = children[pos];
                }
            }
        }
    }

    /// Looks up a value stored under `key`. Among duplicates, returns the
    /// **newest** (last-inserted) entry: inserts append after existing
    /// equal keys, so the newest copy sits last in the rightmost leaf the
    /// descent lands on — which is what makes read-your-writes hold for a
    /// write into an occupied cell.
    pub fn get(&self, key: u64) -> Option<&V> {
        let leaf = self.find_leaf(key, false);
        let Node::Leaf { keys, values, .. } = &*self.nodes[leaf] else {
            unreachable!()
        };
        let pos = keys.partition_point(|&k| k <= key);
        if pos > 0 && keys[pos - 1] == key {
            Some(&values[pos - 1])
        } else {
            None
        }
    }

    /// Looks up `key` and returns a *pinned* read: the guard holds the
    /// leaf page's `Arc`, so the value stays readable — and bit-identical —
    /// even if the tree (or a forked version of it) is mutated afterwards.
    /// The guard's extra reference also *protects* the page: any later
    /// [`Arc::make_mut`] sees the page shared and copies it instead of
    /// editing it in place. This is what lets `ShardedTable::get` hand out
    /// values without cloning them.
    pub fn get_pinned(&self, key: u64) -> Option<EntryGuard<V>> {
        let leaf = self.find_leaf(key, false);
        let Node::Leaf { keys, .. } = &*self.nodes[leaf] else {
            unreachable!()
        };
        let pos = keys.partition_point(|&k| k <= key);
        if pos > 0 && keys[pos - 1] == key {
            Some(EntryGuard::page(Arc::clone(&self.nodes[leaf]), pos - 1))
        } else {
            None
        }
    }
}

/// Mutations require `V: Clone` because copy-on-write may have to duplicate
/// a shared page — including its values — before editing it. Pure reads and
/// forks ([`Clone`]) stay bound-free.
impl<V: Clone> BPlusTree<V> {
    /// Mutable lookup of a value stored under `key` — like [`Self::get`],
    /// the **newest** duplicate.
    ///
    /// Copies the leaf page first if it is shared with another tree
    /// version (copy-on-write), but only when the key is actually present.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let leaf = self.find_leaf(key, false);
        let Node::Leaf { keys, .. } = &*self.nodes[leaf] else {
            unreachable!()
        };
        let pos = keys.partition_point(|&k| k <= key);
        if pos > 0 && keys[pos - 1] == key {
            let Node::Leaf { values, .. } = Arc::make_mut(&mut self.nodes[leaf]) else {
                unreachable!()
            };
            Some(&mut values[pos - 1])
        } else {
            None
        }
    }

    /// Removes the first entry stored under `key` (insertion order among
    /// duplicates) and returns its value.
    ///
    /// Removal is *lazy*: leaves are never merged or rebalanced, so a node
    /// may drop below half occupancy — the invariants
    /// [`Self::check_invariants`] verifies (ordering, separator consistency,
    /// leaf-chain completeness) are all preserved, and scans skip empty
    /// leaves. This mirrors the deferred-compaction strategy of real
    /// storage engines, which reclaim space in the background rather than
    /// on every delete.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut leaf = self.find_leaf(key, true);
        loop {
            // Probe immutably first: only the leaf that actually loses an
            // entry is copied-on-write; leaves merely walked past stay
            // shared with other versions.
            let Node::Leaf { keys, next, .. } = &*self.nodes[leaf] else {
                unreachable!()
            };
            let pos = keys.partition_point(|&k| k < key);
            if pos < keys.len() {
                if keys[pos] != key {
                    return None;
                }
                let Node::Leaf { keys, values, .. } = Arc::make_mut(&mut self.nodes[leaf]) else {
                    unreachable!()
                };
                keys.remove(pos);
                let v = values.remove(pos);
                self.len -= 1;
                return Some(v);
            }
            // Leaf exhausted without passing `key`: duplicates (or the key
            // itself, after deletions emptied this leaf) may continue on the
            // next page.
            match *next {
                Some(n) => leaf = n,
                None => return None,
            }
        }
    }

    /// Inserts an entry (duplicates allowed, kept in insertion order among
    /// equal keys).
    pub fn insert(&mut self, key: u64, value: V) {
        self.len += 1;
        if let Some((sep, right)) = self.insert_rec(self.root, key, value) {
            // Root split: grow the tree by one level.
            let new_root = self.nodes.len();
            let old_root = self.root;
            self.nodes.push(Arc::new(Node::Internal {
                separators: vec![sep],
                children: vec![old_root, right],
            }));
            self.root = new_root;
        }
    }

    /// Returns `Some((separator, new_node_id))` when the child split.
    ///
    /// Copy-on-write discipline: internal nodes are probed immutably for
    /// routing and only copied (`Arc::make_mut`) when a child split forces
    /// a separator insert; the destination leaf is always copied, since an
    /// insert always edits it. Split-off right siblings are appended to the
    /// arena — versions forked *before* the insert never see those slots
    /// (their `next` links and child ids predate them), and the linear
    /// version history means no two live versions ever race to claim the
    /// same new slot.
    fn insert_rec(&mut self, id: usize, key: u64, value: V) -> Option<(u64, usize)> {
        let capacity = self.capacity;
        match &*self.nodes[id] {
            Node::Leaf { .. } => {
                // The id the right sibling will get if this insert splits:
                // nothing is pushed between here and that push.
                let right_id = self.nodes.len();
                let Node::Leaf { keys, values, next } = Arc::make_mut(&mut self.nodes[id]) else {
                    unreachable!()
                };
                let pos = keys.partition_point(|&k| k <= key);
                keys.insert(pos, key);
                values.insert(pos, value);
                if keys.len() <= capacity {
                    return None;
                }
                // Split leaf: move the upper half into a new right sibling.
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_values = values.split_off(mid);
                let sep = right_keys[0];
                let old_next = *next;
                *next = Some(right_id);
                self.nodes.push(Arc::new(Node::Leaf {
                    keys: right_keys,
                    values: right_values,
                    next: old_next,
                }));
                Some((sep, right_id))
            }
            Node::Internal {
                separators,
                children,
            } => {
                let pos = separators.partition_point(|&s| s <= key);
                let child = children[pos];
                let split = self.insert_rec(child, key, value)?;
                let right_id = self.nodes.len();
                let Node::Internal {
                    separators,
                    children,
                } = Arc::make_mut(&mut self.nodes[id])
                else {
                    unreachable!()
                };
                separators.insert(pos, split.0);
                children.insert(pos + 1, split.1);
                if separators.len() <= capacity {
                    return None;
                }
                // Split internal node.
                let mid = separators.len() / 2;
                let sep_up = separators[mid];
                let right_seps = separators.split_off(mid + 1);
                separators.pop(); // sep_up moves up
                let right_children = children.split_off(mid + 1);
                self.nodes.push(Arc::new(Node::Internal {
                    separators: right_seps,
                    children: right_children,
                }));
                Some((sep_up, right_id))
            }
        }
    }
}

impl<V> BPlusTree<V> {
    /// Iterates entries with keys in `lo..=hi`, ascending. The iterator
    /// counts the leaf pages it touches ([`RangeIter::pages`]).
    pub fn range(&self, lo: u64, hi: u64) -> RangeIter<'_, V> {
        let leaf = self.find_leaf(lo, true);
        let Node::Leaf { keys, .. } = &*self.nodes[leaf] else {
            unreachable!()
        };
        let pos = keys.partition_point(|&k| k < lo);
        RangeIter {
            tree: self,
            leaf,
            pos,
            hi,
            pages: 0,
            counted_leaf: false,
        }
    }

    /// Scans entries with keys in `lo..=hi`, ascending, reporting each
    /// *read* leaf page's node id to `on_page` before its entries reach
    /// `visit`.
    ///
    /// This is the storage-backend primitive: page ids let a buffer-pool
    /// simulation decide which touched pages actually cost a transfer, and
    /// the whole scan is `&self` with per-call accounting, so concurrent
    /// scans of a shared tree never contend.
    ///
    /// A page is reported only when the scan loop examines at least one
    /// of its keys as scan data. The *landing* leaf — where the descent
    /// for `lo` arrives — is not reported when `lo` is greater than all
    /// of its keys (which happens whenever `lo` equals a separator key,
    /// i.e. starts exactly on a page boundary): the descent's probe of
    /// that page is index navigation, accounted like internal nodes
    /// (free, as in a real engine whose upper levels live in memory),
    /// while the end-of-scan peek at the next leaf *is* scan data — the
    /// loop must read its first key to decide termination. Before this
    /// rule, a plan re-scanning a coalesced super-range whose start
    /// coincided with a page boundary counted the boundary page twice —
    /// visible as inflated `cache_hits` in [`IoStats`](crate::IoStats).
    /// Leaves emptied by lazy removal are skipped without being reported
    /// for the same reason.
    pub fn scan_range(
        &self,
        lo: u64,
        hi: u64,
        on_page: &mut dyn FnMut(usize),
        visit: &mut dyn FnMut(u64, &V),
    ) {
        let mut leaf = self.find_leaf(lo, true);
        let Node::Leaf { keys, .. } = &*self.nodes[leaf] else {
            unreachable!()
        };
        let mut pos = keys.partition_point(|&k| k < lo);
        loop {
            let Node::Leaf { keys, values, next } = &*self.nodes[leaf] else {
                unreachable!()
            };
            // Hint the next leaf's node while this one is consumed: after
            // incremental inserts the linked leaves are scattered through
            // `nodes` in split order, so every hop is a data-dependent miss
            // the hardware prefetcher cannot predict. Issuing the hint a
            // full leaf early overlaps that miss with this leaf's visits.
            if let Some(nxt) = *next {
                crate::prefetch::prefetch_read(&*self.nodes[nxt]);
            }
            if pos < keys.len() {
                on_page(leaf);
                while pos < keys.len() {
                    let k = keys[pos];
                    if k > hi {
                        return;
                    }
                    visit(k, &values[pos]);
                    pos += 1;
                }
            }
            let Some(nxt) = *next else { return };
            leaf = nxt;
            pos = 0;
        }
    }

    /// The pinned no-prefetch form of [`Self::scan_range`]: identical
    /// reporting and visiting semantics, entry-at-a-time loop, no cache
    /// hints. Exists as the baseline the `index/scan_range` benches and the
    /// equivalence tests compare the prefetched scan against (the same
    /// pinning pattern as `ShardedTable::apply_batch_serial`).
    pub fn scan_range_reference(
        &self,
        lo: u64,
        hi: u64,
        on_page: &mut dyn FnMut(usize),
        visit: &mut dyn FnMut(u64, &V),
    ) {
        let mut leaf = self.find_leaf(lo, true);
        let Node::Leaf { keys, .. } = &*self.nodes[leaf] else {
            unreachable!()
        };
        let mut pos = keys.partition_point(|&k| k < lo);
        let mut counted = false;
        loop {
            let Node::Leaf { keys, values, next } = &*self.nodes[leaf] else {
                unreachable!()
            };
            if pos < keys.len() {
                if !counted {
                    counted = true;
                    on_page(leaf);
                }
                let k = keys[pos];
                if k > hi {
                    return;
                }
                visit(k, &values[pos]);
                pos += 1;
            } else {
                let Some(nxt) = *next else { return };
                leaf = nxt;
                pos = 0;
                counted = false;
            }
        }
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> RangeIter<'_, V> {
        self.range(0, u64::MAX)
    }

    /// Validates structural invariants (sorted keys, separator consistency,
    /// linked leaves cover all entries in order). Test helper.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Every leaf's keys are sorted; the leaf chain yields a global
        // sorted sequence of exactly `len` keys.
        let mut count = 0usize;
        let mut last: Option<u64> = None;
        for (k, _) in self.iter() {
            if let Some(prev) = last {
                if k < prev {
                    return Err(format!("keys out of order: {prev} then {k}"));
                }
            }
            last = Some(k);
            count += 1;
        }
        if count != self.len {
            return Err(format!(
                "leaf chain has {count} entries, len is {}",
                self.len
            ));
        }
        self.check_node(self.root, None, None)
    }

    fn check_node(&self, id: usize, lo: Option<u64>, hi: Option<u64>) -> Result<(), String> {
        match &*self.nodes[id] {
            Node::Leaf { keys, .. } => {
                for &k in keys {
                    // With duplicates, a left sibling may hold keys equal to
                    // the separator, so the upper bound is non-strict.
                    if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k > h) {
                        return Err(format!("leaf key {k} outside ({lo:?}, {hi:?})"));
                    }
                }
                Ok(())
            }
            Node::Internal {
                separators,
                children,
            } => {
                if children.len() != separators.len() + 1 {
                    return Err("child/separator arity mismatch".into());
                }
                if !separators.windows(2).all(|w| w[0] <= w[1]) {
                    return Err("separators out of order".into());
                }
                for (i, &child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(separators[i - 1]) };
                    let chi = if i == separators.len() {
                        hi
                    } else {
                        Some(separators[i])
                    };
                    self.check_node(child, clo, chi)?;
                }
                Ok(())
            }
        }
    }
}

/// A pinned point-read handle from [`BPlusTree::get_pinned`] (and from
/// every [`Backend::get_pinned`](crate::Backend::get_pinned)).
///
/// For in-memory trees the guard owns a reference to the leaf *page*
/// holding the entry, not a copy of the value: dereferencing is free, and
/// the pin outlives the tree it came from. Because the guard keeps the
/// page's `Arc` refcount above one, every copy-on-write mutation path sees
/// the page as shared and copies it before editing — the guarded value can
/// never change or move underneath the reader, without any `unsafe`.
///
/// Disk-resident backends cannot hand out borrows into pages that live in
/// a file, so the guard also has an owned representation
/// ([`EntryGuard::owned`]): the value is decoded once at read time and the
/// guard carries it. Either way the caller sees one stable `Deref<Target
/// = V>` — the representational split is exactly the simulated/real
/// storage split, hidden behind one read API.
#[derive(Debug)]
pub struct EntryGuard<V> {
    repr: GuardRepr<V>,
}

#[derive(Debug)]
enum GuardRepr<V> {
    /// Pins a shared leaf page; the value is read in place.
    Page { node: Arc<Node<V>>, pos: usize },
    /// Carries a value decoded from storage that cannot be borrowed.
    Owned(Box<V>),
}

impl<V> EntryGuard<V> {
    /// A guard pinning `pos` within a leaf page.
    fn page(node: Arc<Node<V>>, pos: usize) -> Self {
        EntryGuard {
            repr: GuardRepr::Page { node, pos },
        }
    }

    /// A guard carrying an already-materialized value — the form
    /// disk-resident backends return, where the storage page cannot be
    /// borrowed.
    pub fn owned(value: V) -> Self {
        EntryGuard {
            repr: GuardRepr::Owned(Box::new(value)),
        }
    }
}

impl<V: Clone> Clone for EntryGuard<V> {
    fn clone(&self) -> Self {
        match &self.repr {
            GuardRepr::Page { node, pos } => EntryGuard::page(Arc::clone(node), *pos),
            GuardRepr::Owned(v) => EntryGuard::owned((**v).clone()),
        }
    }
}

impl<V> Deref for EntryGuard<V> {
    type Target = V;

    fn deref(&self) -> &V {
        match &self.repr {
            GuardRepr::Page { node, pos } => {
                let Node::Leaf { values, .. } = &**node else {
                    unreachable!("EntryGuard always pins a leaf page")
                };
                &values[*pos]
            }
            GuardRepr::Owned(v) => v,
        }
    }
}

/// Iterator over a key range of a [`BPlusTree`].
pub struct RangeIter<'a, V> {
    tree: &'a BPlusTree<V>,
    leaf: usize,
    pos: usize,
    hi: u64,
    pages: u64,
    counted_leaf: bool,
}

impl<V> RangeIter<'_, V> {
    /// Leaf pages this iterator has read so far (simulated page reads):
    /// pages from which at least one key was examined. The landing leaf of
    /// a scan starting past its last key is *not* counted — see
    /// [`BPlusTree::scan_range`] for the accounting rule (and the
    /// double-count it fixes).
    pub fn pages(&self) -> u64 {
        self.pages
    }
}

impl<'a, V> Iterator for RangeIter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<(u64, &'a V)> {
        loop {
            let Node::Leaf {
                keys, values, next, ..
            } = &*self.tree.nodes[self.leaf]
            else {
                unreachable!()
            };
            if self.pos < keys.len() {
                if !self.counted_leaf {
                    self.counted_leaf = true;
                    self.pages += 1;
                    // First touch of a new leaf: hint the one after it so
                    // the hop at the end of this page is already in cache
                    // (see `BPlusTree::scan_range`).
                    if let Some(nxt) = *next {
                        crate::prefetch::prefetch_read(&*self.tree.nodes[nxt]);
                    }
                }
                let k = keys[self.pos];
                if k > self.hi {
                    return None;
                }
                let v = &values[self.pos];
                self.pos += 1;
                return Some((k, v));
            }
            let nxt = (*next)?;
            self.leaf = nxt;
            self.pos = 0;
            self.counted_leaf = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<u32> = BPlusTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert_eq!(t.range(0, 100).count(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_get_with_splits() {
        let mut t = BPlusTree::new(4);
        for k in 0..1000u64 {
            t.insert(k * 7 % 1000, k);
        }
        assert_eq!(t.len(), 1000);
        t.check_invariants().unwrap();
        assert!(t.height() > 2, "splits must have grown the tree");
        for k in [0u64, 1, 499, 999] {
            assert!(t.get(k).is_some(), "missing key {k}");
        }
        assert_eq!(t.get(1000), None);
    }

    #[test]
    fn range_scan_is_sorted_and_complete() {
        let mut t = BPlusTree::new(8);
        for k in (0..500u64).rev() {
            t.insert(k, ());
        }
        let got: Vec<u64> = t.range(100, 199).map(|(k, _)| k).collect();
        let expect: Vec<u64> = (100..=199).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = BPlusTree::new(4);
        for i in 0..10u64 {
            t.insert(42, i);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.range(42, 42).count(), 10);
    }

    #[test]
    fn point_reads_return_newest_duplicate() {
        let mut t = BPlusTree::new(4);
        for k in [7u64, 42, 99] {
            for i in 0..10u64 {
                t.insert(k, (k, i));
            }
        }
        t.check_invariants().unwrap();
        // get / get_pinned / get_mut all answer the last-inserted copy,
        // even when the duplicate run spans several leaves.
        assert_eq!(t.get(42), Some(&(42, 9)));
        assert_eq!(t.get_pinned(42).as_deref(), Some(&(42, 9)));
        assert_eq!(t.get_mut(42), Some(&mut (42, 9)));
        // A fresh insert is immediately the one reads see.
        t.insert(42, (42, 10));
        assert_eq!(t.get(42), Some(&(42, 10)));
        // remove still takes the oldest, so scans keep insertion order.
        assert_eq!(t.remove(42), Some((42, 0)));
        assert_eq!(t.get(42), Some(&(42, 10)));
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let entries: Vec<(u64, u64)> = (0..777u64).map(|k| (k * 3, k)).collect();
        let bulk = BPlusTree::bulk_load(entries.clone(), 16);
        bulk.check_invariants().unwrap();
        let mut inc = BPlusTree::new(16);
        for (k, v) in entries {
            inc.insert(k, v);
        }
        let a: Vec<_> = bulk.iter().map(|(k, &v)| (k, v)).collect();
        let b: Vec<_> = inc.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn bulk_load_rejects_unsorted() {
        let _ = BPlusTree::bulk_load(vec![(3u64, ()), (1, ())], 4);
    }

    #[test]
    fn range_iter_counts_pages() {
        let entries: Vec<(u64, ())> = (0..256u64).map(|k| (k, ())).collect();
        let t = BPlusTree::bulk_load(entries, 16); // 16 leaves
        let mut it = t.range(0, 255);
        assert_eq!(it.by_ref().count(), 256);
        assert_eq!(it.pages(), 16);
        // A scan ending strictly inside a page stops there: one visit.
        let mut it = t.range(0, 14);
        assert_eq!(it.by_ref().count(), 15);
        assert_eq!(it.pages(), 1);
        // A scan ending exactly on a page boundary must peek at the next
        // page (duplicates of the bound could continue there): two visits.
        let mut it = t.range(0, 15);
        assert_eq!(it.by_ref().count(), 16);
        assert_eq!(it.pages(), 2);
    }

    #[test]
    fn scan_starting_on_page_boundary_counts_the_boundary_page_once() {
        // 16 leaves of 16 entries; key 16 is the first key of leaf 1, so it
        // is also the separator above leaf 0. A leftmost descent for lo=16
        // lands on leaf 0 (duplicates of 16 could live there), but reads no
        // entry from it — the old accounting still billed leaf 0, so a scan
        // [16, 20] reported two pages for one page of data. That phantom
        // page is what double-counted cache hits when a planner re-scanned
        // a coalesced super-range starting on a page boundary.
        let entries: Vec<(u64, ())> = (0..256u64).map(|k| (k, ())).collect();
        let t = BPlusTree::bulk_load(entries, 16);
        let mut pages = Vec::new();
        let mut n = 0u32;
        t.scan_range(16, 20, &mut |id| pages.push(id), &mut |_, _| n += 1);
        assert_eq!(n, 5);
        assert_eq!(pages.len(), 1, "only the page actually read is reported");
        // Same rule through the iterator view.
        let mut it = t.range(16, 20);
        assert_eq!(it.by_ref().count(), 5);
        assert_eq!(it.pages(), 1);
        // A scan entirely past the keyspace reads nothing and counts
        // nothing.
        let mut it = t.range(300, 400);
        assert_eq!(it.by_ref().count(), 0);
        assert_eq!(it.pages(), 0);
    }

    #[test]
    fn scan_range_reports_pages_and_entries() {
        let entries: Vec<(u64, u64)> = (0..256u64).map(|k| (k, k * 2)).collect();
        let t = BPlusTree::bulk_load(entries, 16);
        let mut pages = Vec::new();
        let mut got = Vec::new();
        t.scan_range(0, 255, &mut |id| pages.push(id), &mut |k, &v| {
            got.push((k, v))
        });
        assert_eq!(got.len(), 256);
        assert_eq!(pages.len(), 16);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        // Matches the RangeIter view exactly.
        let via_iter: Vec<(u64, u64)> = t.range(0, 255).map(|(k, &v)| (k, v)).collect();
        assert_eq!(got, via_iter);
    }

    #[test]
    fn prefetched_scan_matches_reference_scan() {
        // Random-order inserts scatter the leaf chain through `nodes`
        // (the case prefetching targets); lazy removals add empty leaves
        // the scan must skip identically on both paths.
        let mut t = BPlusTree::new(4);
        for k in 0..512u64 {
            t.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15) % 509, k);
        }
        for k in (0..509u64).step_by(3) {
            t.remove(k);
        }
        for (lo, hi) in [
            (0u64, 508u64),
            (100, 101),
            (17, 400),
            (508, 600),
            (600, 700),
        ] {
            let (mut pages_a, mut got_a) = (Vec::new(), Vec::new());
            t.scan_range(lo, hi, &mut |id| pages_a.push(id), &mut |k, &v| {
                got_a.push((k, v))
            });
            let (mut pages_b, mut got_b) = (Vec::new(), Vec::new());
            t.scan_range_reference(lo, hi, &mut |id| pages_b.push(id), &mut |k, &v| {
                got_b.push((k, v))
            });
            assert_eq!(got_a, got_b, "entries diverge on [{lo}, {hi}]");
            assert_eq!(pages_a, pages_b, "page accounting diverges on [{lo}, {hi}]");
        }
    }

    #[test]
    fn remove_takes_first_duplicate_and_preserves_invariants() {
        let mut t = BPlusTree::new(4);
        for i in 0..10u64 {
            t.insert(42, i);
        }
        t.insert(7, 100);
        assert_eq!(t.remove(42), Some(0), "first duplicate goes first");
        assert_eq!(t.remove(42), Some(1));
        assert_eq!(t.len(), 9);
        t.check_invariants().unwrap();
        assert_eq!(t.remove(99), None);
        assert_eq!(t.remove(7), Some(100));
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_everything_leaves_working_tree() {
        let mut t = BPlusTree::new(4);
        for k in 0..200u64 {
            t.insert(k * 3 % 200, k);
        }
        for k in 0..200u64 {
            assert!(t.remove(k * 7 % 200).is_some(), "key {k}");
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
        assert_eq!(t.range(0, u64::MAX).count(), 0);
        // The emptied tree still accepts inserts and finds them.
        t.insert(5, 55);
        assert_eq!(t.get(5), Some(&55));
        t.check_invariants().unwrap();
    }

    #[test]
    fn scans_skip_emptied_leaves() {
        let mut t = BPlusTree::new(2); // tiny leaves: deletions empty them fast
        for k in 0..64u64 {
            t.insert(k, k);
        }
        for k in 10..40u64 {
            assert_eq!(t.remove(k), Some(k));
        }
        t.check_invariants().unwrap();
        let got: Vec<u64> = t.range(0, 63).map(|(k, _)| k).collect();
        let expect: Vec<u64> = (0..10u64).chain(40..64).collect();
        assert_eq!(got, expect);
        assert_eq!(t.get(20), None);
        assert_eq!(t.get(40), Some(&40));
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut t = BPlusTree::new(4);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        *t.get_mut(42).unwrap() = 777;
        assert_eq!(t.get(42), Some(&777));
        assert_eq!(t.get_mut(1000), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn fork_shares_pages_and_isolates_mutations() {
        let mut t = BPlusTree::new(4);
        for k in 0..512u64 {
            t.insert(k, k);
        }
        let snap = t.clone();
        // Mutate the original every way a batch can: the fork must keep
        // seeing the pre-fork state bit-for-bit.
        for k in 0..256u64 {
            t.remove(k * 2);
        }
        for k in 512..600u64 {
            t.insert(k, k);
        }
        *t.get_mut(511).unwrap() = 9999;
        t.check_invariants().unwrap();
        snap.check_invariants().unwrap();
        assert_eq!(snap.len(), 512);
        let got: Vec<u64> = snap.iter().map(|(k, _)| k).collect();
        let expect: Vec<u64> = (0..512).collect();
        assert_eq!(got, expect, "fork still sees every pre-fork key");
        assert_eq!(snap.get(511), Some(&511), "fork unaffected by get_mut");
        assert_eq!(t.get(511), Some(&9999));
        // And the reverse: mutating the fork leaves the original alone.
        let mut fork2 = t.clone();
        fork2.remove(511);
        assert_eq!(t.get(511), Some(&9999));
    }

    #[test]
    fn entry_guard_outlives_tree_mutation_and_drop() {
        let mut t = BPlusTree::new(4);
        for k in 0..128u64 {
            t.insert(k, k * 10);
        }
        let pin = t.get_pinned(42).unwrap();
        assert_eq!(*pin, 420);
        // Overwrite, delete, split around it: the pinned page is shared,
        // so copy-on-write must copy rather than edit it in place.
        *t.get_mut(42).unwrap() = 1;
        for k in 0..128u64 {
            t.insert(k, k);
        }
        t.remove(42);
        assert_eq!(*pin, 420, "pin still reads the pre-mutation value");
        drop(t);
        assert_eq!(*pin, 420, "pin outlives the tree entirely");
        assert!(t_missing_pin().is_none());
    }

    fn t_missing_pin() -> Option<EntryGuard<u64>> {
        let t: BPlusTree<u64> = BPlusTree::new(4);
        t.get_pinned(7)
    }

    #[test]
    fn range_outside_keyspace_is_empty() {
        let t = BPlusTree::bulk_load(vec![(10u64, ()), (20, ())], 4);
        assert_eq!(t.range(30, 40).count(), 0);
        assert_eq!(t.range(0, 5).count(), 0);
        assert_eq!(t.range(10, 20).count(), 2);
    }
}
