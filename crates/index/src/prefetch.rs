//! Software prefetch hints for the pointer-chasing scan and batch-apply
//! paths.
//!
//! A linked-leaf range scan and a permutation-ordered batch apply share a
//! memory access pattern the hardware prefetcher cannot learn: the next
//! address is data-dependent (a leaf's `next` link, a sort permutation's
//! next slot), so each hop is a serial cache miss. Both paths, however,
//! *know* the next address well before they need its contents — so they
//! hand it to the cache early with a non-binding `prefetcht0` hint and
//! overlap the miss with the work on the current element.
//!
//! This is the only unsafe code in the crate, and it is unsafe in name
//! only: `_mm_prefetch` performs no memory access, affects no
//! architectural state, and is explicitly documented to be valid for any
//! address, including null and dangling ones. On non-x86_64 targets the
//! hint compiles to nothing. The crate root narrows `forbid(unsafe_code)`
//! to `deny` solely so this module can scope an `allow` around the
//! intrinsic; everything else still refuses unsafe code at compile time.
#![allow(unsafe_code)]

/// Hints the cache hierarchy to load the line containing `p` (all levels,
/// `_MM_HINT_T0`). Non-binding and side-effect free: a wrong or useless
/// hint costs at most a wasted line fill, never correctness.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    // SAFETY: `_mm_prefetch` is a pure hint. It does not dereference `p`,
    // cannot fault (the instruction suppresses all exceptions, per the
    // Intel SDM), and requires only SSE, which is part of the x86_64
    // baseline — no runtime feature detection needed.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
}

/// No-op fallback: other architectures get no hint (correctness is
/// unaffected — prefetching is purely an optimization).
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
pub(crate) fn prefetch_read<T>(_p: *const T) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_harmless_for_any_address() {
        // A hint must never fault: live, dangling, and null addresses are
        // all valid operands.
        let x = 42u64;
        prefetch_read(&x);
        prefetch_read(std::ptr::null::<u64>());
        prefetch_read(0xdead_beef_usize as *const u64);
    }
}
