//! The engine itself: shared-reference op execution, the epoch write log,
//! and the planner wiring.

use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::RectQuery;
use sfc_index::{
    Backend, BatchOp, DiskModel, MemoryBackend, Planner, QueryPlan, QueryResult, Record,
    ShardedTable,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// One operation of the serving stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op<const D: usize, V> {
    /// Point lookup: pending-log overlay first, then the owning shard.
    Get(Point<D>),
    /// Rectangle query through the adaptive planner (epoch-boundary
    /// consistent; does not read the pending log).
    Query(RectQuery<D>),
    /// Insert a record (duplicates allowed), deferred to the next epoch.
    /// On an occupied cell this appends a duplicate: point gets return
    /// the *oldest* record once applied, so read-your-writes holds only
    /// for vacant cells — use [`Op::Update`] for upsert semantics.
    Insert(Point<D>, V),
    /// Replace-or-insert the payload at a point, deferred to the next
    /// epoch.
    Update(Point<D>, V),
    /// Remove the first record at a point, deferred to the next epoch.
    Delete(Point<D>),
}

impl<const D: usize, V> Op<D, V> {
    /// Whether this operation only reads.
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Get(_) | Op::Query(_))
    }
}

/// Generated workload streams ([`sfc_workloads::mixed_op_stream`]) map
/// one-to-one onto engine ops, so benches and tests can drive an engine
/// with `stream.into_iter().map(Op::from)`.
impl<const D: usize> From<sfc_workloads::StreamOp<D>> for Op<D, u64> {
    fn from(op: sfc_workloads::StreamOp<D>) -> Self {
        use sfc_workloads::StreamOp;
        match op {
            StreamOp::Get(p) => Op::Get(p),
            StreamOp::Query(q) => Op::Query(q),
            StreamOp::Insert(p, v) => Op::Insert(p, v),
            StreamOp::Update(p, v) => Op::Update(p, v),
            StreamOp::Delete(p) => Op::Delete(p),
        }
    }
}

/// What one executed operation returned.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply<const D: usize, V> {
    /// A `Get`'s result.
    Value(Option<V>),
    /// A `Query`'s matching records, in curve-key order.
    Records(Vec<Record<D, V>>),
    /// A write was admitted into the log; it will be applied by an epoch
    /// numbered strictly greater than `epoch` — usually the next one, but
    /// an admission racing an in-flight flush (whose batch was already
    /// staged without this write) lands in the epoch after that.
    Queued {
        /// Epochs applied so far at admission time (a lower bound on the
        /// applying epoch, not an exact slot).
        epoch: u64,
    },
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Admitted writes that trigger an automatic epoch flush. Larger
    /// epochs amortize sorting and lock traffic better but delay rect-
    /// query visibility of writes.
    pub epoch_ops: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { epoch_ops: 1024 }
    }
}

/// A live snapshot of the engine's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Point gets served.
    pub gets: u64,
    /// Rectangle queries served.
    pub queries: u64,
    /// Writes admitted.
    pub writes: u64,
    /// Epochs applied.
    pub epochs: u64,
    /// Writes currently pending in the log.
    pub pending: u64,
    /// Epoch flushes that failed (durable engines: WAL I/O errors). The
    /// staged writes stay queued and are retried; a nonzero value with a
    /// growing `pending` means the log device needs attention.
    pub flush_failures: u64,
}

/// The concurrent serving layer: a [`ShardedTable`] behind an op-stream
/// API, with epoch-batched writes and adaptive query planning. See the
/// crate docs for the consistency model.
///
/// Every method takes `&self`; the engine is `Send + Sync` whenever its
/// curve, payload, and backend are, so one instance serves any number of
/// threads.
pub struct Engine<C, V, const D: usize, B = MemoryBackend<Record<D, V>>> {
    table: ShardedTable<C, V, D, B>,
    planner: Planner,
    /// The active write log: admitted, not yet being applied. An
    /// `RwLock` so concurrent point-get overlays (read) never serialize
    /// each other; only admits and flush staging take the write lock.
    log: RwLock<Vec<BatchOp<D, V>>>,
    /// The epoch currently being applied (the "immutable memtable"): moved
    /// here from `log` at flush start and cleared once the table has
    /// absorbed it, so point-get overlays never observe a window where an
    /// admitted write is in neither the log nor the table. Lock order is
    /// always `log` before `applying`.
    applying: RwLock<Vec<BatchOp<D, V>>>,
    /// Serializes epoch application so two concurrent flushes cannot
    /// reorder same-key writes across their batches.
    apply_gate: Mutex<()>,
    /// Durable state (WAL handle, data directory, frame encoder) — `Some`
    /// only for engines built by [`Engine::open`]/[`Engine::open_paged`].
    /// When present, [`Engine::flush`] commits each epoch to the log
    /// before any shard mutates; see the [`durable`](crate) docs.
    pub(crate) durability: Option<crate::durable::Durability<D, V>>,
    epoch: AtomicU64,
    gets: AtomicU64,
    queries: AtomicU64,
    writes: AtomicU64,
    /// Flushes that returned an error (see [`EngineStats::flush_failures`]).
    flush_failures: AtomicU64,
    /// Backlog size at the last *failed* auto-flush. The next automatic
    /// attempt waits for another full epoch of admissions past this
    /// watermark, so a persistently failing WAL costs one staging
    /// attempt per `epoch_ops` writes instead of one per write (the
    /// backlog still grows; `flush_failures` is the signal to act on).
    /// Cleared by any successful flush.
    auto_flush_watermark: AtomicU64,
    config: EngineConfig,
}

impl<const D: usize, C, V, B> Engine<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone,
    B: Backend<Record<D, V>>,
{
    /// Wraps a sharded table as a serving engine. The planner prices
    /// plans under the table's own [`DiskModel`].
    pub fn new(table: ShardedTable<C, V, D, B>, config: EngineConfig) -> Self {
        let planner = Planner::new(*table.model());
        Engine {
            table,
            planner,
            log: RwLock::new(Vec::new()),
            applying: RwLock::new(Vec::new()),
            apply_gate: Mutex::new(()),
            durability: None,
            epoch: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flush_failures: AtomicU64::new(0),
            auto_flush_watermark: AtomicU64::new(0),
            config,
        }
    }

    /// The underlying sharded table (stats, shard sizes, direct queries).
    /// Reads through it see the last epoch's state, like `Op::Query`.
    pub fn table(&self) -> &ShardedTable<C, V, D, B> {
        &self.table
    }

    /// The adaptive planner and its live statistics.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The disk model pricing this engine's simulated I/O.
    pub fn model(&self) -> &DiskModel {
        self.table.model()
    }

    /// Number of epochs applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Recovery hook: positions the epoch counter at the last epoch the
    /// reconstructed table contains, so post-recovery flushes continue
    /// the WAL's numbering seamlessly.
    pub(crate) fn set_recovered_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Writes currently pending: admitted to the active log plus staged in
    /// the epoch being applied right now (if any). Both stages are read
    /// under one joint acquisition (same `log` → `applying` order as
    /// `flush`), so a write moving between them mid-flush is never
    /// counted twice.
    pub fn pending(&self) -> usize {
        let log = self.log.read().expect("write log poisoned");
        let applying = self.applying.read().expect("applying buffer poisoned");
        log.len() + applying.len()
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            gets: self.gets.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            epochs: self.epoch(),
            pending: self.pending() as u64,
            flush_failures: self.flush_failures.load(Ordering::Relaxed),
        }
    }

    /// Applies every pending write as one epoch: the log is drained,
    /// stably sorted into curve-key order inside
    /// [`ShardedTable::apply_batch`], and applied shard by shard under
    /// the shards' write locks. Returns the number of writes applied
    /// (zero if the log was empty — no epoch is counted then).
    ///
    /// On a durable engine ([`Engine::open`]), the epoch is first
    /// committed to the write-ahead log — frame appended and synced —
    /// and only then applied to the table. When `flush` returns `Ok`,
    /// the epoch survives any crash; writes that are merely admitted
    /// (acknowledged [`Reply::Queued`], not yet flushed) do not.
    ///
    /// # Errors
    /// On a WAL commit failure (durable engines; the staged epoch is
    /// re-queued ahead of newer admissions, so no acknowledged write is
    /// lost in memory and a later flush retries the same epoch).
    /// Table-side application never fails in practice — every logged op
    /// was bounds-checked at admission.
    pub fn flush(&self) -> Result<usize, SfcError> {
        let _gate = self.lock_apply_gate();
        self.flush_gated()
    }

    /// Takes the epoch-application gate (crate-internal): `checkpoint`
    /// holds it across its flush *and* snapshot so no epoch can slip in
    /// between them.
    pub(crate) fn lock_apply_gate(&self) -> std::sync::MutexGuard<'_, ()> {
        self.apply_gate.lock().expect("apply gate poisoned")
    }

    /// [`Self::flush`] with the apply gate already held — shared with
    /// [`Engine::checkpoint`], which must snapshot at the exact epoch its
    /// own flush produced.
    pub(crate) fn flush_gated(&self) -> Result<usize, SfcError> {
        // Stage the epoch: move the active log into the applying buffer
        // (held only while the gate is held, so it was empty before this).
        // Point-get overlays keep seeing these writes throughout the
        // apply — first in `applying`, then in the table itself.
        let batch = {
            let mut log = self.log.write().expect("write log poisoned");
            let mut applying = self.applying.write().expect("applying buffer poisoned");
            debug_assert!(applying.is_empty(), "gate serializes epochs");
            *applying = std::mem::take(&mut *log);
            // Release the log before the O(n) clone: admits and the first
            // overlay stage proceed during it; only `applying` readers
            // wait, and they'd see exactly these ops anyway.
            drop(log);
            applying.clone()
        };
        if batch.is_empty() {
            return Ok(0);
        }
        let applied = batch.len();
        // Commit point (durable engines): the epoch's frame is appended
        // and synced *before* any shard mutates — write-ahead order. A
        // crash after this line replays the epoch; a crash before it
        // recovers the previous epoch boundary.
        let committed = match &self.durability {
            Some(d) => d.commit(self.epoch() + 1, &batch),
            None => Ok(()),
        };
        let result = match committed {
            Ok(()) => match self.table.apply_batch(batch) {
                Ok(_) => Ok(()),
                Err(e) => {
                    // The frame is on disk but the table refused the
                    // epoch: un-commit it so the log never holds an epoch
                    // the table does not, and the retried flush can
                    // re-commit the same epoch number. (Best-effort: if
                    // the rollback itself fails on top of an apply
                    // failure — two independent failures on a path that
                    // is unreachable today — recovery would replay the
                    // orphaned frame, which re-applies the same ops the
                    // re-queued batch holds.)
                    if let Some(d) = &self.durability {
                        let _ = d.rollback_last();
                    }
                    Err(e)
                }
            },
            Err(e) => Err(e),
        };
        {
            let mut log = self.log.write().expect("write log poisoned");
            let mut applying = self.applying.write().expect("applying buffer poisoned");
            if result.is_err() {
                // Never drop acknowledged writes: re-queue the staged
                // epoch ahead of anything admitted since, so a later
                // flush retries it in order. Whichever half failed, the
                // WAL holds no frame for this epoch by now — a failed
                // append truncates itself, a committed frame whose apply
                // failed was rolled back above — so the retry re-commits
                // the same epoch number cleanly. (A batch that failed
                // *after partially applying* may re-apply some ops on
                // retry — acceptable for a path that is unreachable
                // today, since every op was bounds-checked at admission.)
                let mut staged = std::mem::take(&mut *applying);
                staged.append(&mut log);
                *log = staged;
            } else {
                applying.clear();
            }
        }
        if result.is_err() {
            self.flush_failures.fetch_add(1, Ordering::Relaxed);
        } else {
            self.auto_flush_watermark.store(0, Ordering::Release);
        }
        result?;
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(applied)
    }

    /// Consumes the engine, flushing pending writes, and returns the
    /// table — the epoch-boundary state a model comparison reads.
    ///
    /// # Errors
    /// Propagates [`Self::flush`] errors.
    pub fn into_table(self) -> Result<ShardedTable<C, V, D, B>, SfcError> {
        self.flush()?;
        Ok(self.table)
    }

    /// Validates a write target against the universe so the epoch apply
    /// can never fail on it.
    fn check_point(&self, p: Point<D>) -> Result<(), SfcError> {
        let universe = self.table.curve().universe();
        if universe.contains(p) {
            Ok(())
        } else {
            Err(SfcError::PointOutOfBounds {
                point: p.to_string(),
                side: universe.side(),
            })
        }
    }

    /// Admits one write; auto-flushes when the log reaches the epoch
    /// threshold.
    fn admit(&self, op: BatchOp<D, V>) -> Result<Reply<D, V>, SfcError> {
        self.check_point(op.point())?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch();
        let backlog = {
            let mut log = self.log.write().expect("write log poisoned");
            log.push(op);
            log.len()
        };
        // Auto-flush once the backlog crosses the threshold — backed off
        // past the last failure's watermark so a persistently failing WAL
        // (durable engines, disk trouble) re-stages the growing batch
        // once per epoch of admissions, not once per write.
        let watermark = self.auto_flush_watermark.load(Ordering::Acquire);
        if backlog >= self.config.epoch_ops
            && backlog as u64 >= watermark + self.config.epoch_ops as u64
        {
            // An auto-flush failure is not *this op's* failure — the
            // write is admitted either way, and the staged epoch was
            // re-queued for the next flush. Propagating the error here
            // would tell the caller the write failed while it is in fact
            // pending, and a retry would then duplicate it. Durability
            // errors surface where durability is acknowledged: explicit
            // [`Self::flush`]/`checkpoint` calls, and the
            // [`EngineStats::flush_failures`] counter.
            if self.flush().is_err() {
                self.auto_flush_watermark
                    .store(backlog as u64, Ordering::Release);
            }
        }
        Ok(Reply::Queued { epoch })
    }

    /// Serves a point get: the pending logs overlay the table — the
    /// active log first (newest writes win), then the epoch currently
    /// being applied — so every admitted write is observable at all
    /// times, including mid-flush. Overlay scans take read locks (gets
    /// never serialize each other) and are `O(pending)`, bounded by
    /// [`EngineConfig::epoch_ops`].
    fn get(&self, p: Point<D>) -> Result<Reply<D, V>, SfcError> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        for stage in [&self.log, &self.applying] {
            let pending = stage.read().expect("write stage poisoned");
            for op in pending.iter().rev() {
                if op.point() == p {
                    return Ok(Reply::Value(match op {
                        BatchOp::Insert(_, v) | BatchOp::Update(_, v) => Some(v.clone()),
                        BatchOp::Delete(_) => None,
                    }));
                }
            }
        }
        Ok(Reply::Value(self.table.get(p)?))
    }
}

impl<const D: usize, C, V, B> Engine<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send,
    B: Backend<Record<D, V>> + Send + Sync,
{
    /// Executes one operation. Reads return their results; writes return
    /// [`Reply::Queued`] and become visible to rectangle queries at the
    /// next epoch (point gets see them immediately via the log overlay).
    ///
    /// # Errors
    /// If the op's point or query lies outside the curve's universe.
    pub fn execute(&self, op: Op<D, V>) -> Result<Reply<D, V>, SfcError> {
        match op {
            Op::Get(p) => self.get(p),
            Op::Query(q) => {
                let (result, _) = self.query(&q)?;
                Ok(Reply::Records(result.records))
            }
            Op::Insert(p, v) => self.admit(BatchOp::Insert(p, v)),
            Op::Update(p, v) => self.admit(BatchOp::Update(p, v)),
            Op::Delete(p) => self.admit(BatchOp::Delete(p)),
        }
    }

    /// Executes a stream of operations in order, collecting every reply.
    ///
    /// # Errors
    /// On the first invalid op (earlier ops stay executed).
    pub fn run_stream(
        &self,
        ops: impl IntoIterator<Item = Op<D, V>>,
    ) -> Result<Vec<Reply<D, V>>, SfcError> {
        ops.into_iter().map(|op| self.execute(op)).collect()
    }

    /// Serves a rectangle query through the planner, returning the full
    /// [`QueryResult`] (records, ranges, [`IoStats`](sfc_index::IoStats))
    /// and the executed [`QueryPlan`].
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn query(&self, q: &RectQuery<D>) -> Result<(QueryResult<D, V>, QueryPlan), SfcError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.table.query_rect_planned(q, &self.planner)
    }

    /// Plans a rectangle query without executing it — the `EXPLAIN` API:
    /// [`QueryPlan::explain`] describes the decision the next execution
    /// of `q` would take under current statistics.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn explain(&self, q: &RectQuery<D>) -> Result<QueryPlan, SfcError> {
        self.table.plan_rect(q, &self.planner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::Onion2D;
    use sfc_index::DiskModel;

    fn engine(side: u32, shards: usize, epoch_ops: usize) -> Engine<Onion2D, u32, 2> {
        let records: Vec<(Point<2>, u32)> = (0..side)
            .flat_map(|x| (0..side).map(move |y| (Point::new([x, y]), x * 100 + y)))
            .collect();
        let table = ShardedTable::build(
            Onion2D::new(side).unwrap(),
            records,
            DiskModel::ssd(),
            shards,
        )
        .unwrap();
        Engine::new(table, EngineConfig { epoch_ops })
    }

    #[test]
    fn reads_see_pending_writes_immediately() {
        let e = engine(16, 4, 1_000_000);
        let p = Point::new([3, 3]);
        assert_eq!(e.execute(Op::Get(p)).unwrap(), Reply::Value(Some(303)));
        assert_eq!(
            e.execute(Op::Update(p, 999)).unwrap(),
            Reply::Queued { epoch: 0 }
        );
        // Overlay: the write is pending, not applied...
        assert_eq!(e.execute(Op::Get(p)).unwrap(), Reply::Value(Some(999)));
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.pending(), 1);
        // ...and a delete overlays the update.
        e.execute(Op::Delete(p)).unwrap();
        assert_eq!(e.execute(Op::Get(p)).unwrap(), Reply::Value(None));
        // The table below still holds the old value until the epoch.
        assert_eq!(e.table().get(p).unwrap(), Some(303));
        assert_eq!(e.flush().unwrap(), 2);
        assert_eq!(e.epoch(), 1);
        assert_eq!(e.table().get(p).unwrap(), None);
        assert_eq!(e.execute(Op::Get(p)).unwrap(), Reply::Value(None));
    }

    #[test]
    fn rect_queries_are_epoch_boundary_consistent() {
        let e = engine(16, 4, 1_000_000);
        let q = RectQuery::new([0, 0], [4, 4]).unwrap();
        let Reply::Records(before) = e.execute(Op::Query(q)).unwrap() else {
            unreachable!()
        };
        assert_eq!(before.len(), 16);
        e.execute(Op::Delete(Point::new([1, 1]))).unwrap();
        // Pending writes are invisible to rect queries...
        let Reply::Records(mid) = e.execute(Op::Query(q)).unwrap() else {
            unreachable!()
        };
        assert_eq!(mid.len(), 16);
        // ...until the epoch boundary.
        e.flush().unwrap();
        let Reply::Records(after) = e.execute(Op::Query(q)).unwrap() else {
            unreachable!()
        };
        assert_eq!(after.len(), 15);
    }

    #[test]
    fn epoch_threshold_auto_flushes() {
        let e = engine(16, 2, 4);
        for i in 0..7u32 {
            e.execute(Op::Insert(Point::new([i, 0]), 1000 + i)).unwrap();
        }
        // 7 writes at threshold 4: one auto-flush at the 4th, 3 pending.
        assert_eq!(e.epoch(), 1);
        assert_eq!(e.pending(), 3);
        let stats = e.stats();
        assert_eq!(stats.writes, 7);
        assert_eq!(stats.epochs, 1);
        assert_eq!(stats.pending, 3);
        e.flush().unwrap();
        assert_eq!(e.epoch(), 2);
        assert_eq!(e.flush().unwrap(), 0, "empty flush is a no-op");
        assert_eq!(e.epoch(), 2, "empty flush counts no epoch");
    }

    #[test]
    fn invalid_ops_error_without_corrupting_state() {
        let e = engine(8, 2, 100);
        assert!(e.execute(Op::Get(Point::new([8, 0]))).is_err());
        assert!(e.execute(Op::Insert(Point::new([0, 8]), 1)).is_err());
        assert!(e
            .execute(Op::Query(RectQuery::new([5, 5], [5, 5]).unwrap()))
            .is_err());
        assert_eq!(e.pending(), 0, "invalid writes are not admitted");
        assert_eq!(e.table().len(), 64);
    }

    #[test]
    fn explain_reports_without_executing() {
        let e = engine(32, 4, 100);
        let q = RectQuery::new([3, 3], [20, 9]).unwrap();
        let plan = e.explain(&q).unwrap();
        assert!(plan.clusters >= 1);
        assert!(!plan.explain().is_empty());
        assert_eq!(e.stats().queries, 0, "explain is not an execution");
        let (result, executed) = e.query(&q).unwrap();
        assert_eq!(result.records.len() as u64, q.volume());
        assert_eq!(executed.clusters, plan.clusters);
        assert_eq!(e.stats().queries, 1);
    }

    #[test]
    fn into_table_flushes_first() {
        let e = engine(8, 2, 1_000_000);
        e.execute(Op::Update(Point::new([2, 2]), 777)).unwrap();
        let table = e.into_table().unwrap();
        assert_eq!(table.get(Point::new([2, 2])).unwrap(), Some(777));
    }
}
