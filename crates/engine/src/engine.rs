//! The engine itself: shared-reference op execution, the epoch write log,
//! and the planner wiring.

use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::RectQuery;
use sfc_index::{
    Backend, BatchOp, DiskModel, MemoryBackend, Planner, QueryPlan, QueryResult, Record,
    ShardedTable,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::Duration;

/// One operation of the serving stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op<const D: usize, V> {
    /// Point lookup: pending-log overlay first, then the owning shard.
    Get(Point<D>),
    /// Rectangle query through the adaptive planner (epoch-boundary
    /// consistent; does not read the pending log).
    Query(RectQuery<D>),
    /// Insert a record (duplicates allowed), deferred to the next epoch.
    /// On an occupied cell this appends a duplicate: point gets return
    /// the **newest** record (both in the pending-log overlay and once
    /// applied), so read-your-writes holds; rectangle scans still return
    /// every duplicate in insertion order. Use [`Op::Update`] to replace
    /// instead of append.
    Insert(Point<D>, V),
    /// Replace-or-insert the payload at a point, deferred to the next
    /// epoch.
    Update(Point<D>, V),
    /// Remove the first record at a point, deferred to the next epoch.
    Delete(Point<D>),
    /// Rectangle query against a **past** epoch — a Datomic-style
    /// time-travel read: answered from the retention window when the
    /// version is still held, reconstructed by `snapshot + WAL prefix`
    /// replay on durable engines when it is not. See
    /// [`Engine::query_as_of`].
    QueryAsOf {
        /// The epoch whose state to observe (as counted by
        /// [`Engine::epoch`]).
        epoch: u64,
        /// The rectangle to query at that epoch.
        query: RectQuery<D>,
    },
}

impl<const D: usize, V> Op<D, V> {
    /// Whether this operation only reads.
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Get(_) | Op::Query(_) | Op::QueryAsOf { .. })
    }
}

/// Generated workload streams ([`sfc_workloads::mixed_op_stream`]) map
/// one-to-one onto engine ops, so benches and tests can drive an engine
/// with `stream.into_iter().map(Op::from)`.
impl<const D: usize> From<sfc_workloads::StreamOp<D>> for Op<D, u64> {
    fn from(op: sfc_workloads::StreamOp<D>) -> Self {
        use sfc_workloads::StreamOp;
        match op {
            StreamOp::Get(p) => Op::Get(p),
            StreamOp::Query(q) => Op::Query(q),
            StreamOp::Insert(p, v) => Op::Insert(p, v),
            StreamOp::Update(p, v) => Op::Update(p, v),
            StreamOp::Delete(p) => Op::Delete(p),
        }
    }
}

/// A write's admission receipt: the acknowledgment that the op is in the
/// engine's log and will be applied by a later epoch. Shared between the
/// in-process [`Reply::Admitted`] and the wire protocol's response, so a
/// remote client and a local caller read the identical receipt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Admitted {
    /// Epochs applied so far at admission time — a lower bound on the
    /// epoch that will apply this write (strictly greater than this;
    /// usually the next one, but an admission racing an in-flight flush
    /// whose batch was already staged lands in the epoch after that).
    pub epoch: u64,
}

impl sfc_index::WalCodec for Admitted {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
    }

    fn decode(cur: &mut sfc_index::WalCursor<'_>) -> Option<Self> {
        Some(Admitted {
            epoch: u64::decode(cur)?,
        })
    }
}

/// What one executed operation returned.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply<const D: usize, V> {
    /// A `Get`'s result.
    Value(Option<V>),
    /// A `Query`'s matching records, in curve-key order.
    Records(Vec<Record<D, V>>),
    /// A write was admitted into the log — see [`Admitted`].
    Admitted(Admitted),
}

/// How epochs reach the write-ahead log: the group-commit and
/// pipelining knobs of a durable engine's flush path (ignored — zero
/// cost — on in-memory engines).
///
/// Concurrent `flush` callers always coalesce through a leader/follower
/// commit queue: one leader stages and commits everything admitted so
/// far, followers wait for the leader's sync to cover their writes. The
/// policy tunes how the leader overlaps the disk:
///
/// * [`max_epochs`](Self::max_epochs) is the **pipeline depth** — how
///   many committed-but-not-yet-fsynced epoch frames may be in flight
///   while the engine goes on encoding and applying later epochs. `0`
///   disables pipelining entirely: every commit appends *and* syncs
///   before its epoch applies (the PR-4 write path, kept as the
///   reference for the byte-identity proptests and the
///   `engine/wal_commit_path` bench pair).
/// * [`max_delay`](Self::max_delay) is the classic group-commit window:
///   an explicit-flush leader lingers this long before staging so that
///   concurrent writers' admissions land in the same epoch — and the
///   same fsync. Zero (the default) adds no latency; the leader/follower
///   queue and the sync pipeline already coalesce concurrent flushers
///   without it.
///
/// Whatever the policy, the **commit point is unchanged**: when an
/// explicit [`Engine::flush`] returns `Ok`, every epoch it covers has
/// been appended *and* fsynced. Pipelining only changes what happens
/// between auto-flush cadences, where durability was never acknowledged
/// to anyone; the crash contract (recovery = a prefix of
/// flush-acknowledged epochs) is untouched, and epochs become durable in
/// order, so recovery still always lands on an epoch-boundary prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitPolicy {
    /// Pipeline depth: epoch frames appended to the WAL but not yet
    /// fsync-confirmed while later epochs encode and apply. `0` =
    /// fully synchronous commits (append + fsync before the epoch
    /// applies).
    pub max_epochs: usize,
    /// Group-commit window an explicit-flush leader waits before staging,
    /// letting concurrent writers share the epoch and its fsync.
    pub max_delay: Duration,
}

impl CommitPolicy {
    /// The PR-4 reference path: no pipelining, every epoch frame is
    /// appended and fsynced before it applies.
    pub fn synchronous() -> Self {
        CommitPolicy {
            max_epochs: 0,
            max_delay: Duration::ZERO,
        }
    }
}

impl Default for CommitPolicy {
    fn default() -> Self {
        CommitPolicy {
            // Deep enough that production-rate epochs (tens of
            // microseconds apart) never stall behind a device flush
            // (hundreds): the window must cover at least one fsync's
            // worth of epochs for the pipeline to hide the disk.
            max_epochs: 16,
            max_delay: Duration::ZERO,
        }
    }
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Admitted writes that trigger an automatic epoch flush. Larger
    /// epochs amortize sorting and lock traffic better but delay rect-
    /// query visibility of writes. Also the staging granularity: a flush
    /// draining a larger backlog commits it as multiple epochs of at most
    /// this many ops, all sharing the pipeline's syncs.
    pub epoch_ops: usize,
    /// Group-commit and WAL-pipelining policy (durable engines only).
    pub commit: CommitPolicy,
    /// How many superseded epoch versions the table keeps for
    /// [`Engine::snapshot_at`]/[`Op::QueryAsOf`] — the in-memory
    /// time-travel window. Epochs evicted from it are still reachable on
    /// durable engines through WAL replay (until a checkpoint absorbs
    /// them).
    pub retention: sfc_index::RetentionPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            epoch_ops: 1024,
            commit: CommitPolicy::default(),
            retention: sfc_index::RetentionPolicy::default(),
        }
    }
}

impl EngineConfig {
    /// Default config with the given auto-flush threshold.
    pub fn with_epoch_ops(epoch_ops: usize) -> Self {
        EngineConfig {
            epoch_ops,
            ..EngineConfig::default()
        }
    }
}

/// A live snapshot of the engine's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Point gets served.
    pub gets: u64,
    /// Rectangle queries served.
    pub queries: u64,
    /// Writes admitted.
    pub writes: u64,
    /// Epochs applied.
    pub epochs: u64,
    /// Writes currently pending in the log.
    pub pending: u64,
    /// Epoch flushes that failed (durable engines: WAL I/O errors). The
    /// staged writes stay queued and are retried; a nonzero value with a
    /// growing `pending` means the log device needs attention.
    pub flush_failures: u64,
    /// Epochs whose WAL frame is fsync-confirmed (durable engines; equal
    /// to `epochs` on in-memory engines and whenever the commit pipeline
    /// is drained). `epochs - durable_epochs` is the pipeline's current
    /// durability lag, bounded by [`CommitPolicy::max_epochs`].
    pub durable_epochs: u64,
}

/// Wire format: the seven counters in declaration order, so a remote
/// `Stats` verb ships the same struct the in-process call returns.
impl sfc_index::WalCodec for EngineStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.gets.encode(buf);
        self.queries.encode(buf);
        self.writes.encode(buf);
        self.epochs.encode(buf);
        self.pending.encode(buf);
        self.flush_failures.encode(buf);
        self.durable_epochs.encode(buf);
    }

    fn decode(cur: &mut sfc_index::WalCursor<'_>) -> Option<Self> {
        Some(EngineStats {
            gets: u64::decode(cur)?,
            queries: u64::decode(cur)?,
            writes: u64::decode(cur)?,
            epochs: u64::decode(cur)?,
            pending: u64::decode(cur)?,
            flush_failures: u64::decode(cur)?,
            durable_epochs: u64::decode(cur)?,
        })
    }
}

/// The leader/follower commit queue behind [`Engine::flush`]: at most
/// one leader stages and applies epochs at a time; everyone else waits
/// on the condvar for the published watermarks to cover their target.
struct FlushQueue {
    state: Mutex<FlushState>,
    /// Notified whenever leadership frees up or the watermarks advance.
    done: Condvar,
}

#[derive(Default)]
struct FlushState {
    /// Whether a leader currently holds the staging baton.
    leader_active: bool,
    /// Admission sequence (the `writes` counter) fully applied so far:
    /// every admitted write numbered at or below this has been applied
    /// to the table by some leader's epoch.
    applied_seq: u64,
    /// Epoch counter at the time `applied_seq` was published — the epoch
    /// a follower must see fsync-confirmed before reporting its covered
    /// writes durable.
    applied_epoch: u64,
}

impl FlushQueue {
    fn new() -> Self {
        FlushQueue {
            state: Mutex::new(FlushState::default()),
            done: Condvar::new(),
        }
    }
}

/// Epochs a subscriber may buffer before the feed declares it lagged and
/// drops its backlog: bounds the engine-side memory a stalled consumer
/// (e.g. a replica behind a dead socket) can pin.
const FEED_QUEUE_CAP: usize = 1024;

/// One event from an epoch subscription.
#[derive(Clone, Debug)]
pub enum FeedEvent<const D: usize, V> {
    /// Epoch `.0` committed with ops `.1` (submission order). Epoch
    /// numbers arrive strictly consecutively per subscription.
    Epoch(u64, std::sync::Arc<Vec<BatchOp<D, V>>>),
    /// The subscriber fell more than `FEED_QUEUE_CAP` epochs behind;
    /// its backlog was dropped. The subscription is dead — re-subscribe
    /// and catch up from the WAL (or a fresh snapshot).
    Lagged,
}

/// One subscriber's slot in the feed: its undelivered epochs, oldest
/// first.
struct FeedSlot<const D: usize, V> {
    id: u64,
    queue: std::collections::VecDeque<(u64, std::sync::Arc<Vec<BatchOp<D, V>>>)>,
    lagged: bool,
}

struct FeedState<const D: usize, V> {
    slots: Vec<FeedSlot<D, V>>,
    /// Highest epoch published so far (recovery positions it at the
    /// recovered epoch) — what a new subscription resumes *after*.
    last_published: u64,
    next_id: u64,
}

/// The live epoch feed behind [`Engine::subscribe_epochs`]: committed
/// epoch batches fan out to subscribers, cloned only when at least one
/// subscription is active — an engine nobody subscribes to pays nothing.
pub(crate) struct FeedShared<const D: usize, V> {
    state: Mutex<FeedState<D, V>>,
    wake: Condvar,
}

impl<const D: usize, V> FeedShared<D, V> {
    fn new() -> Self {
        FeedShared {
            state: Mutex::new(FeedState {
                slots: Vec::new(),
                last_published: 0,
                next_id: 0,
            }),
            wake: Condvar::new(),
        }
    }

    /// Publishes one committed epoch to every live subscriber. Called
    /// with the apply gate held, so epochs arrive in order and exactly
    /// once per subscription.
    fn publish(&self, epoch: u64, ops: &[BatchOp<D, V>])
    where
        V: Clone,
    {
        let mut st = self.state.lock().expect("epoch feed poisoned");
        st.last_published = epoch;
        if st.slots.is_empty() {
            return;
        }
        let shared = std::sync::Arc::new(ops.to_vec());
        for slot in &mut st.slots {
            if slot.lagged {
                continue;
            }
            if slot.queue.len() >= FEED_QUEUE_CAP {
                slot.queue.clear();
                slot.lagged = true;
                continue;
            }
            slot.queue
                .push_back((epoch, std::sync::Arc::clone(&shared)));
        }
        drop(st);
        self.wake.notify_all();
    }

    /// Positions the feed's epoch watermark without publishing — the
    /// recovery hook mirroring `Engine::set_recovered_epoch`.
    fn set_epoch(&self, epoch: u64) {
        self.state
            .lock()
            .expect("epoch feed poisoned")
            .last_published = epoch;
    }
}

/// A live subscription to an engine's committed epochs — what the
/// replication layer ships to read replicas. Obtained from
/// [`Engine::subscribe_epochs`]; detached from the engine's lifetime (it
/// holds the feed by `Arc`), so it can be owned by a server thread.
///
/// Delivery starts with the first epoch applied *after* the subscription
/// was registered ([`Self::start_epoch`] is the boundary); earlier
/// epochs must be caught up from the WAL or a snapshot.
pub struct EpochSubscription<const D: usize, V> {
    feed: std::sync::Arc<FeedShared<D, V>>,
    id: u64,
    start_epoch: u64,
}

impl<const D: usize, V> EpochSubscription<D, V> {
    /// The feed's epoch watermark when this subscription registered:
    /// every epoch `> start_epoch` will be delivered (in order, no
    /// gaps); every epoch `<= start_epoch` predates the subscription.
    pub fn start_epoch(&self) -> u64 {
        self.start_epoch
    }

    /// Waits up to `timeout` for the next event. `None` means the wait
    /// timed out with nothing queued — poll again (servers use the
    /// timeout to notice shutdown and dead peers).
    pub fn next_timeout(&self, timeout: Duration) -> Option<FeedEvent<D, V>> {
        let mut st = self.feed.state.lock().expect("epoch feed poisoned");
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let slot = st
                .slots
                .iter_mut()
                .find(|s| s.id == self.id)
                .expect("subscription outlives its slot");
            if slot.lagged {
                return Some(FeedEvent::Lagged);
            }
            if let Some((epoch, ops)) = slot.queue.pop_front() {
                return Some(FeedEvent::Epoch(epoch, ops));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timed_out) = self
                .feed
                .wake
                .wait_timeout(st, deadline - now)
                .expect("epoch feed poisoned");
            st = guard;
            if timed_out.timed_out() {
                // Re-check once: a publish may have raced the timeout.
                let slot = st
                    .slots
                    .iter_mut()
                    .find(|s| s.id == self.id)
                    .expect("subscription outlives its slot");
                if slot.lagged {
                    return Some(FeedEvent::Lagged);
                }
                return slot
                    .queue
                    .pop_front()
                    .map(|(e, ops)| FeedEvent::Epoch(e, ops));
            }
        }
    }
}

impl<const D: usize, V> Drop for EpochSubscription<D, V> {
    fn drop(&mut self) {
        let mut st = self.feed.state.lock().expect("epoch feed poisoned");
        st.slots.retain(|s| s.id != self.id);
    }
}

/// The concurrent serving layer: a [`ShardedTable`] behind an op-stream
/// API, with epoch-batched writes and adaptive query planning. See the
/// crate docs for the consistency model.
///
/// Every method takes `&self`; the engine is `Send + Sync` whenever its
/// curve, payload, and backend are, so one instance serves any number of
/// threads.
pub struct Engine<C, V, const D: usize, B = MemoryBackend<Record<D, V>>> {
    table: ShardedTable<C, V, D, B>,
    planner: Planner,
    /// The active write log: admitted, not yet being applied. An
    /// `RwLock` so concurrent point-get overlays (read) never serialize
    /// each other; only admits and flush staging take the write lock.
    log: RwLock<Vec<BatchOp<D, V>>>,
    /// The epoch currently being applied (the "immutable memtable"): moved
    /// here from `log` at flush start and cleared once the table has
    /// absorbed it, so point-get overlays never observe a window where an
    /// admitted write is in neither the log nor the table. Lock order is
    /// always `log` before `applying`.
    applying: RwLock<Vec<BatchOp<D, V>>>,
    /// Serializes epoch application so two concurrent flushes cannot
    /// reorder same-key writes across their batches.
    apply_gate: Mutex<()>,
    /// The group-commit queue: concurrent `flush` callers elect one
    /// leader; followers wait for the leader's epoch (and its fsync) to
    /// cover their writes instead of queueing up fsyncs of their own.
    flush_q: FlushQueue,
    /// Durable state (WAL handle, data directory, frame encoder) — `Some`
    /// only for engines built by [`Engine::open`]/[`Engine::open_paged`].
    /// When present, [`Engine::flush`] commits each epoch to the log
    /// before any shard mutates; see the [`durable`](crate) docs.
    pub(crate) durability: Option<crate::durable::Durability<D, V>>,
    /// The live epoch feed ([`Engine::subscribe_epochs`]). Behind an
    /// `Arc` so subscriptions survive independently of the engine (and
    /// of [`Engine::into_table`] disassembling it).
    feed: std::sync::Arc<FeedShared<D, V>>,
    epoch: AtomicU64,
    gets: AtomicU64,
    queries: AtomicU64,
    writes: AtomicU64,
    /// Flushes that returned an error (see [`EngineStats::flush_failures`]).
    flush_failures: AtomicU64,
    /// Backlog size at the last *failed* auto-flush. The next automatic
    /// attempt waits for another full epoch of admissions past this
    /// watermark, so a persistently failing WAL costs one staging
    /// attempt per `epoch_ops` writes instead of one per write (the
    /// backlog still grows; `flush_failures` is the signal to act on).
    /// Cleared by any successful flush.
    auto_flush_watermark: AtomicU64,
    config: EngineConfig,
}

impl<const D: usize, C, V, B> Engine<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send,
    B: Backend<Record<D, V>> + Send + Sync,
{
    /// Wraps a sharded table as a serving engine. The planner prices
    /// plans under the table's own [`DiskModel`].
    pub fn new(table: ShardedTable<C, V, D, B>, config: EngineConfig) -> Self {
        let planner = Planner::new(*table.model());
        let mut table = table;
        table.set_retention(config.retention);
        Engine {
            table,
            planner,
            log: RwLock::new(Vec::new()),
            applying: RwLock::new(Vec::new()),
            apply_gate: Mutex::new(()),
            flush_q: FlushQueue::new(),
            durability: None,
            feed: std::sync::Arc::new(FeedShared::new()),
            epoch: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flush_failures: AtomicU64::new(0),
            auto_flush_watermark: AtomicU64::new(0),
            config,
        }
    }

    /// The underlying sharded table (stats, shard sizes, direct queries).
    /// Reads through it see the last epoch's state, like `Op::Query`.
    pub fn table(&self) -> &ShardedTable<C, V, D, B> {
        &self.table
    }

    /// The adaptive planner and its live statistics.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The disk model pricing this engine's simulated I/O.
    pub fn model(&self) -> &DiskModel {
        self.table.model()
    }

    /// Number of epochs applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of epochs whose WAL frame is fsync-confirmed — the durable
    /// prefix a crash right now would recover (equal to [`Self::epoch`]
    /// for in-memory engines, and whenever the commit pipeline is
    /// drained, e.g. right after an explicit [`Self::flush`]).
    pub fn durable_epoch(&self) -> u64 {
        match &self.durability {
            Some(d) => d.synced_epoch(),
            None => self.epoch(),
        }
    }

    /// Recovery hook: positions the epoch counter at the last epoch the
    /// reconstructed table contains — and stamps the table's current
    /// version with the same number — so post-recovery flushes continue
    /// the WAL's numbering seamlessly and [`Self::snapshot_at`] answers
    /// in WAL epochs from the first post-recovery batch on.
    pub(crate) fn set_recovered_epoch(&self, epoch: u64) {
        self.table.set_epoch(epoch);
        self.feed.set_epoch(epoch);
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Subscribes to the engine's committed epochs: every epoch applied
    /// after this call is delivered — in order, without gaps — as a
    /// [`FeedEvent::Epoch`] carrying the epoch's ops. This is the
    /// replication tap: a transactor's serving layer streams these
    /// frames to read replicas, which replay them through the same
    /// `apply_batch` path recovery uses.
    ///
    /// Epochs committed *before* the call (at or below
    /// [`EpochSubscription::start_epoch`]) are not replayed here; catch
    /// up from the WAL ([`Engine::committed_frames_since`]) or a
    /// snapshot first. A subscriber that falls more than a queue's worth
    /// of epochs behind is cut off with [`FeedEvent::Lagged`].
    pub fn subscribe_epochs(&self) -> EpochSubscription<D, V> {
        let mut st = self.feed.state.lock().expect("epoch feed poisoned");
        let id = st.next_id;
        st.next_id += 1;
        let start_epoch = st.last_published;
        st.slots.push(FeedSlot {
            id,
            queue: std::collections::VecDeque::new(),
            lagged: false,
        });
        drop(st);
        EpochSubscription {
            feed: std::sync::Arc::clone(&self.feed),
            id,
            start_epoch,
        }
    }

    /// Reads every committed WAL frame with `epoch > from_excl`, in
    /// commit order — the catch-up path a fresh epoch subscriber pairs
    /// with [`Self::subscribe_epochs`]: subscribe first, then fetch
    /// `committed_frames_since(0)` (or since its own applied epoch) and
    /// replay up to the subscription's
    /// [`start_epoch`](EpochSubscription::start_epoch) before switching
    /// to live events.
    ///
    /// Drains the commit pipeline first, so every acknowledged epoch is
    /// physically in the log before the read.
    ///
    /// # Errors
    /// [`SfcError::EpochTruncated`] when the WAL no longer reaches back
    /// to `from_excl` — a checkpoint truncated that history, or the
    /// engine is in-memory and has no replayable history at all. The
    /// error carries the horizon (the oldest epoch catch-up can still
    /// resume from), so a subscriber can tell "bootstrap from a
    /// snapshot" apart from transient I/O failure
    /// ([`SfcError::Storage`]).
    pub fn committed_frames_since(
        &self,
        from_excl: u64,
    ) -> Result<Vec<sfc_index::EpochFrame<D, V>>, SfcError> {
        match &self.durability {
            Some(d) => {
                // Read the epoch *before* the frames: if a flush lands in
                // between, the new epoch's frame is in the result and the
                // emptiness check below cannot spuriously fire.
                let epoch_before = self.epoch();
                let frames = d.frames_since(from_excl)?;
                if frames.is_empty() && from_excl < epoch_before {
                    // A checkpoint emptied the log past `from_excl`:
                    // epochs up to (at least) `epoch_before` committed
                    // but are no longer replayable.
                    return Err(SfcError::EpochTruncated {
                        requested: from_excl,
                        horizon: epoch_before,
                    });
                }
                Ok(frames)
            }
            // An in-memory engine has no WAL: nothing before the current
            // epoch can ever be replayed, which is exactly a truncation
            // with the horizon at the present.
            None => Err(SfcError::EpochTruncated {
                requested: from_excl,
                horizon: self.epoch(),
            }),
        }
    }

    /// Writes currently pending: admitted to the active log plus staged in
    /// the epoch being applied right now (if any). Both stages are read
    /// under one joint acquisition (same `log` → `applying` order as
    /// `flush`), so a write moving between them mid-flush is never
    /// counted twice.
    pub fn pending(&self) -> usize {
        let log = self.log.read().expect("write log poisoned");
        let applying = self.applying.read().expect("applying buffer poisoned");
        log.len() + applying.len()
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            gets: self.gets.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            epochs: self.epoch(),
            pending: self.pending() as u64,
            flush_failures: self.flush_failures.load(Ordering::Relaxed),
            durable_epochs: self.durable_epoch(),
        }
    }

    /// Applies every pending write in epochs: the log is drained in
    /// chunks of at most [`EngineConfig::epoch_ops`] ops, each stably
    /// sorted into curve-key order inside
    /// [`ShardedTable::apply_batch`] and applied shard by shard (large
    /// epochs: concurrently per shard) under the shards' write locks.
    /// Returns the number of writes applied (zero if the log was empty —
    /// no epoch is counted then).
    ///
    /// Concurrent `flush` callers **group-commit**: one leader stages and
    /// commits everything admitted so far; the others wait for the
    /// leader's epochs (and, on durable engines, their fsyncs) to cover
    /// their writes and return `Ok(0)` without staging or syncing
    /// anything themselves. [`CommitPolicy::max_delay`] optionally makes
    /// the leader linger so even writers that have not called `flush` yet
    /// share the sync.
    ///
    /// On a durable engine ([`Engine::open`]), each epoch is committed to
    /// the write-ahead log before the next is staged, and `flush` returns
    /// `Ok` only once every epoch it covers is appended **and fsynced**:
    /// the commit point is the synced append, exactly as without
    /// pipelining. When `flush` returns `Ok`, the epochs survive any
    /// crash; writes that are merely admitted (acknowledged
    /// [`Reply::Admitted`], not yet flushed) do not.
    ///
    /// # Errors
    /// On a WAL commit or sync failure (durable engines; a staged-but-
    /// uncommitted epoch is re-queued ahead of newer admissions, so no
    /// acknowledged write is lost in memory and a later flush retries the
    /// same epoch). Table-side application never fails in practice —
    /// every logged op was bounds-checked at admission.
    pub fn flush(&self) -> Result<usize, SfcError> {
        let target = self.writes.load(Ordering::Acquire);
        {
            let mut st = self.flush_q.state.lock().expect("flush queue poisoned");
            loop {
                if !st.leader_active {
                    if st.applied_seq >= target {
                        // A concurrent leader already applied everything
                        // admitted before this call; just confirm its
                        // durability.
                        let epoch = st.applied_epoch;
                        drop(st);
                        self.wait_durable(epoch)?;
                        return Ok(0);
                    }
                    st.leader_active = true;
                    break;
                }
                st = self.flush_q.done.wait(st).expect("flush queue poisoned");
            }
        }
        // Leader: optionally linger so concurrent admissions coalesce
        // into this epoch (and its fsync), then stage and apply.
        let delay = self.config.commit.max_delay;
        if !delay.is_zero() && self.durability.is_some() {
            std::thread::sleep(delay);
        }
        let result = {
            let _gate = self.lock_apply_gate();
            self.flush_gated()
        };
        self.finish_lead();
        let applied = result?;
        self.wait_durable(self.epoch())?;
        Ok(applied)
    }

    /// Takes the epoch-application gate (crate-internal): `checkpoint`
    /// holds it across its flush *and* snapshot so no epoch can slip in
    /// between them.
    pub(crate) fn lock_apply_gate(&self) -> std::sync::MutexGuard<'_, ()> {
        self.apply_gate.lock().expect("apply gate poisoned")
    }

    /// Acquires flush leadership, waiting out any active leader — the
    /// entry half of the group-commit protocol, shared with
    /// [`Engine::checkpoint`] (which must also keep followers out while
    /// it snapshots).
    pub(crate) fn acquire_lead(&self) {
        let mut st = self.flush_q.state.lock().expect("flush queue poisoned");
        while st.leader_active {
            st = self.flush_q.done.wait(st).expect("flush queue poisoned");
        }
        st.leader_active = true;
    }

    /// Releases flush leadership and publishes the applied watermarks,
    /// waking followers. The watermark is recomputed from the ground
    /// truth (admitted minus pending) under the stage locks, so it stays
    /// correct whether the lead flushed cleanly, partially (error after
    /// some chunks), or not at all.
    pub(crate) fn finish_lead(&self) {
        let applied_seq = {
            let log = self.log.read().expect("write log poisoned");
            let applying = self.applying.read().expect("applying buffer poisoned");
            // Admits assign their sequence and push under the log write
            // lock, so reading `writes` while holding the log read lock
            // sees a count consistent with the log's contents.
            self.writes.load(Ordering::Acquire) - (log.len() + applying.len()) as u64
        };
        let mut st = self.flush_q.state.lock().expect("flush queue poisoned");
        st.leader_active = false;
        st.applied_seq = st.applied_seq.max(applied_seq);
        st.applied_epoch = st.applied_epoch.max(self.epoch());
        self.flush_q.done.notify_all();
    }

    /// Blocks until every epoch up to `epoch` is fsync-confirmed (no-op
    /// for in-memory engines and for `max_epochs == 0`, where commits
    /// sync inline).
    fn wait_durable(&self, epoch: u64) -> Result<(), SfcError> {
        match &self.durability {
            Some(d) => d.wait_durable(epoch),
            None => Ok(()),
        }
    }

    /// [`Self::flush`] with the apply gate already held and leadership
    /// already acquired — shared with [`Engine::checkpoint`], which must
    /// snapshot at the exact epoch its own flush produced. Drains the
    /// whole backlog in epochs of at most [`EngineConfig::epoch_ops`]
    /// ops; on durable engines the epochs ride the commit pipeline and
    /// are *not* necessarily fsynced yet when this returns (the callers
    /// own the commit point: `flush` waits, `checkpoint` supersedes the
    /// log with a synced snapshot).
    pub(crate) fn flush_gated(&self) -> Result<usize, SfcError> {
        let mut total = 0usize;
        loop {
            let applied = self.flush_one_epoch()?;
            if applied == 0 {
                return Ok(total);
            }
            total += applied;
        }
    }

    /// Stages and applies one epoch of at most
    /// [`EngineConfig::epoch_ops`] ops (gate held by the caller).
    fn flush_one_epoch(&self) -> Result<usize, SfcError> {
        // Stage the epoch: move the oldest chunk of the active log into
        // the applying buffer (held only while the gate is held, so it
        // was empty before this). Point-get overlays keep seeing these
        // writes throughout the apply — first in `applying`, then in the
        // table itself.
        let cap = self.config.epoch_ops.max(1);
        let batch = {
            let mut log = self.log.write().expect("write log poisoned");
            let mut applying = self.applying.write().expect("applying buffer poisoned");
            debug_assert!(applying.is_empty(), "gate serializes epochs");
            if log.len() <= cap {
                *applying = std::mem::take(&mut *log);
            } else {
                *applying = log.drain(..cap).collect();
            }
            // Release the log before the O(n) clone: admits and the first
            // overlay stage proceed during it; only `applying` readers
            // wait, and they'd see exactly these ops anyway.
            drop(log);
            applying.clone()
        };
        if batch.is_empty() {
            return Ok(0);
        }
        let applied = batch.len();
        // Commit (durable engines): the epoch's frame is appended — and,
        // depending on [`CommitPolicy::max_epochs`], synced inline or
        // handed to the sync pipeline — before any shard mutates. The
        // durable commit *point* stays the synced append: it is what
        // explicit flushes wait for before acknowledging.
        let committed = match &self.durability {
            Some(d) => d.commit(self.epoch() + 1, &batch),
            None => Ok(()),
        };
        let result = match committed {
            Ok(()) => match self.table.apply_batch(batch) {
                Ok(_) => Ok(()),
                Err(e) => {
                    // The frame is on disk but the table refused the
                    // epoch: un-commit it so the log never holds an epoch
                    // the table does not, and the retried flush can
                    // re-commit the same epoch number. (Best-effort: if
                    // the rollback itself fails on top of an apply
                    // failure — two independent failures on a path that
                    // is unreachable today — recovery would replay the
                    // orphaned frame, which re-applies the same ops the
                    // re-queued batch holds.)
                    if let Some(d) = &self.durability {
                        let _ = d.rollback_last(self.epoch() + 1);
                    }
                    Err(e)
                }
            },
            Err(e) => Err(e),
        };
        {
            let mut log = self.log.write().expect("write log poisoned");
            let mut applying = self.applying.write().expect("applying buffer poisoned");
            if result.is_err() {
                // Never drop acknowledged writes: re-queue the staged
                // epoch ahead of anything admitted since, so a later
                // flush retries it in order. Whichever half failed, the
                // WAL holds no frame for this epoch by now — a failed
                // append truncates itself, a committed frame whose apply
                // failed was rolled back above — so the retry re-commits
                // the same epoch number cleanly. (A batch that failed
                // *after partially applying* may re-apply some ops on
                // retry — acceptable for a path that is unreachable
                // today, since every op was bounds-checked at admission.)
                let mut staged = std::mem::take(&mut *applying);
                staged.append(&mut log);
                *log = staged;
            } else {
                // The epoch is applied (and, on durable engines,
                // committed): fan it out to replication subscribers
                // before it leaves the staging buffer. Publishing under
                // the apply gate keeps per-subscription delivery
                // strictly in epoch order.
                self.feed.publish(self.epoch() + 1, &applying);
                applying.clear();
            }
        }
        if result.is_err() {
            self.flush_failures.fetch_add(1, Ordering::Relaxed);
        } else {
            self.auto_flush_watermark.store(0, Ordering::Release);
        }
        result?;
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(applied)
    }

    /// Consumes the engine, flushing pending writes, and returns the
    /// table — the epoch-boundary state a model comparison reads.
    ///
    /// # Errors
    /// Propagates [`Self::flush`] errors.
    pub fn into_table(self) -> Result<ShardedTable<C, V, D, B>, SfcError> {
        self.flush()?;
        Ok(self.table)
    }

    /// Validates a write target against the universe so the epoch apply
    /// can never fail on it.
    fn check_point(&self, p: Point<D>) -> Result<(), SfcError> {
        let universe = self.table.curve().universe();
        if universe.contains(p) {
            Ok(())
        } else {
            Err(SfcError::PointOutOfBounds {
                point: p.to_string(),
                side: universe.side(),
            })
        }
    }

    /// Admits one write; auto-flushes when the log reaches the epoch
    /// threshold.
    fn admit(&self, op: BatchOp<D, V>) -> Result<Reply<D, V>, SfcError> {
        self.check_point(op.point())?;
        let epoch = self.epoch();
        let backlog = {
            let mut log = self.log.write().expect("write log poisoned");
            // The admission sequence is assigned under the same lock the
            // op is pushed under, so the group-commit watermarks
            // (`FlushState::applied_seq`) can be recomputed consistently
            // from `writes - pending`.
            self.writes.fetch_add(1, Ordering::Release);
            log.push(op);
            log.len()
        };
        // Auto-flush once the backlog crosses the threshold — backed off
        // past the last failure's watermark so a persistently failing WAL
        // (durable engines, disk trouble) re-stages the growing batch
        // once per epoch of admissions, not once per write.
        let watermark = self.auto_flush_watermark.load(Ordering::Acquire);
        if backlog >= self.config.epoch_ops
            && backlog as u64 >= watermark + self.config.epoch_ops as u64
        {
            // An auto-flush failure is not *this op's* failure — the
            // write is admitted either way, and the staged epoch was
            // re-queued for the next flush. Propagating the error here
            // would tell the caller the write failed while it is in fact
            // pending, and a retry would then duplicate it. Durability
            // errors surface where durability is acknowledged: explicit
            // [`Self::flush`]/`checkpoint` calls, and the
            // [`EngineStats::flush_failures`] counter.
            if !self.try_flush_auto() {
                self.auto_flush_watermark
                    .store(backlog as u64, Ordering::Release);
            }
        }
        Ok(Reply::Admitted(Admitted { epoch }))
    }

    /// The admission path's flush: applies the backlog like
    /// [`Self::flush`] but **never blocks behind another leader** (the
    /// active leader is already staging this op's epoch, or the next
    /// admission will re-trigger) and **never waits for fsyncs** — the
    /// commit pipeline makes auto-flushed epochs durable in the
    /// background, and only an explicit `flush`/`checkpoint` acknowledges
    /// durability. Returns `false` only on a flush error.
    fn try_flush_auto(&self) -> bool {
        {
            let mut st = self.flush_q.state.lock().expect("flush queue poisoned");
            if st.leader_active {
                return true;
            }
            st.leader_active = true;
        }
        let result = {
            let _gate = self.lock_apply_gate();
            self.flush_gated()
        };
        self.finish_lead();
        result.is_ok()
    }

    /// Serves a point get: the pending logs overlay the table — the
    /// active log first (newest writes win), then the epoch currently
    /// being applied — so every admitted write is observable at all
    /// times, including mid-flush. Overlay scans take read locks (gets
    /// never serialize each other) and are `O(pending)`, bounded by
    /// [`EngineConfig::epoch_ops`].
    fn get(&self, p: Point<D>) -> Result<Reply<D, V>, SfcError> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        for stage in [&self.log, &self.applying] {
            let pending = stage.read().expect("write stage poisoned");
            for op in pending.iter().rev() {
                if op.point() == p {
                    return Ok(Reply::Value(match op {
                        BatchOp::Insert(_, v) | BatchOp::Update(_, v) => Some(v.clone()),
                        BatchOp::Delete(_) => None,
                    }));
                }
            }
        }
        Ok(Reply::Value(self.table.get(p)?.map(|guard| guard.cloned())))
    }
}

impl<const D: usize, C, V, B> Engine<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send,
    B: Backend<Record<D, V>> + Send + Sync,
{
    /// Executes one operation. Reads return their results; writes return
    /// [`Reply::Admitted`] and become visible to rectangle queries at the
    /// next epoch (point gets see them immediately via the log overlay).
    ///
    /// # Errors
    /// If the op's point or query lies outside the curve's universe.
    pub fn execute(&self, op: Op<D, V>) -> Result<Reply<D, V>, SfcError> {
        match op {
            Op::Get(p) => self.get(p),
            Op::Query(q) => {
                let (result, _) = self.query(&q)?;
                Ok(Reply::Records(result.records))
            }
            Op::Insert(p, v) => self.admit(BatchOp::Insert(p, v)),
            Op::Update(p, v) => self.admit(BatchOp::Update(p, v)),
            Op::Delete(p) => self.admit(BatchOp::Delete(p)),
            Op::QueryAsOf { epoch, query } => {
                let result = self.query_as_of(epoch, &query)?;
                Ok(Reply::Records(result.records))
            }
        }
    }

    /// Executes a stream of operations in order, collecting every reply.
    ///
    /// # Errors
    /// On the first invalid op (earlier ops stay executed).
    pub fn run_stream(
        &self,
        ops: impl IntoIterator<Item = Op<D, V>>,
    ) -> Result<Vec<Reply<D, V>>, SfcError> {
        ops.into_iter().map(|op| self.execute(op)).collect()
    }

    /// Serves a rectangle query through the planner, returning the full
    /// [`QueryResult`] (records, ranges, [`IoStats`](sfc_index::IoStats))
    /// and the executed [`QueryPlan`].
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn query(&self, q: &RectQuery<D>) -> Result<(QueryResult<D, V>, QueryPlan), SfcError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut result = self
            .table
            .query_rect(q, &sfc_index::QueryOptions::planned(&self.planner))?;
        let plan = result.plan.take().expect("planned query carries its plan");
        Ok((result, plan))
    }

    /// Plans a rectangle query without executing it — the `EXPLAIN` API:
    /// [`QueryPlan::explain`] describes the decision the next execution
    /// of `q` would take under current statistics.
    ///
    /// # Errors
    /// If the query does not fit inside the universe.
    pub fn explain(&self, q: &RectQuery<D>) -> Result<QueryPlan, SfcError> {
        self.table.plan_rect(q, &self.planner)
    }

    /// Pins epoch `epoch`'s version as a read handle, if the retention
    /// window (configured by [`EngineConfig::retention`]) still holds it.
    /// Every read through the returned snapshot observes exactly that
    /// epoch, however many batches later flushes apply; the pin itself is
    /// what keeps the version (and every page it shares) alive. `None`
    /// means the version was evicted — [`Self::query_as_of`] still
    /// answers on durable engines, by WAL replay.
    pub fn snapshot_at(&self, epoch: u64) -> Option<sfc_index::TableSnapshot<'_, C, V, D, B>> {
        self.table.snapshot_at(epoch)
    }

    /// Serves a rectangle query **as of** a past epoch — the time-travel
    /// read behind [`Op::QueryAsOf`]. Fast path: the retention window
    /// still holds the version, and the scan pins it like any other
    /// (lock-free, no replay). Cold path (durable engines only): the
    /// epoch's state is reconstructed from `snapshot + WAL prefix`
    /// through the live log handle — exactly the recovery computation,
    /// evaluated at `epoch` instead of at the tail — so `as_of(e)` always
    /// equals what a crash-recovery at epoch `e` would have served.
    ///
    /// Like [`Op::Query`], this reads committed epoch state only: writes
    /// still pending in the log are invisible until flushed.
    ///
    /// # Errors
    /// If `epoch` exceeds the applied epoch, if the query does not fit
    /// inside the universe, on WAL/snapshot I/O failure, or if the
    /// epoch's history is gone — evicted from retention on an in-memory
    /// engine, or absorbed by a newer checkpoint on a durable one.
    pub fn query_as_of(&self, epoch: u64, q: &RectQuery<D>) -> Result<QueryResult<D, V>, SfcError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if let Some(snapshot) = self.table.snapshot_at(epoch) {
            return snapshot.query_rect(q);
        }
        if epoch > self.epoch() {
            return Err(SfcError::Storage {
                context: format!(
                    "as_of epoch {epoch} has not been applied yet (current epoch {})",
                    self.epoch()
                ),
            });
        }
        let Some(d) = &self.durability else {
            return Err(SfcError::Storage {
                context: format!(
                    "epoch {epoch} was evicted from the retention window and this \
                     in-memory engine has no WAL to replay it from (retained: {:?})",
                    self.table.retained_epochs()
                ),
            });
        };
        let Some((entries, ops)) = d.historical_state(epoch)? else {
            return Err(SfcError::Storage {
                context: format!(
                    "epoch {epoch} is older than the last checkpoint's snapshot — its \
                     history was compacted away"
                ),
            });
        };
        self.table.query_rect_replayed(entries, ops, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::Onion2D;
    use sfc_index::DiskModel;

    fn engine(side: u32, shards: usize, epoch_ops: usize) -> Engine<Onion2D, u32, 2> {
        let records: Vec<(Point<2>, u32)> = (0..side)
            .flat_map(|x| (0..side).map(move |y| (Point::new([x, y]), x * 100 + y)))
            .collect();
        let table = ShardedTable::build(
            Onion2D::new(side).unwrap(),
            records,
            DiskModel::ssd(),
            shards,
        )
        .unwrap();
        Engine::new(table, EngineConfig::with_epoch_ops(epoch_ops))
    }

    #[test]
    fn reads_see_pending_writes_immediately() {
        let e = engine(16, 4, 1_000_000);
        let p = Point::new([3, 3]);
        assert_eq!(e.execute(Op::Get(p)).unwrap(), Reply::Value(Some(303)));
        assert_eq!(
            e.execute(Op::Update(p, 999)).unwrap(),
            Reply::Admitted(Admitted { epoch: 0 })
        );
        // Overlay: the write is pending, not applied...
        assert_eq!(e.execute(Op::Get(p)).unwrap(), Reply::Value(Some(999)));
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.pending(), 1);
        // ...and a delete overlays the update.
        e.execute(Op::Delete(p)).unwrap();
        assert_eq!(e.execute(Op::Get(p)).unwrap(), Reply::Value(None));
        // The table below still holds the old value until the epoch.
        assert_eq!(e.table().get(p).unwrap().map(|g| g.value), Some(303));
        assert_eq!(e.flush().unwrap(), 2);
        assert_eq!(e.epoch(), 1);
        assert!(e.table().get(p).unwrap().is_none());
        assert_eq!(e.execute(Op::Get(p)).unwrap(), Reply::Value(None));
    }

    #[test]
    fn rect_queries_are_epoch_boundary_consistent() {
        let e = engine(16, 4, 1_000_000);
        let q = RectQuery::new([0, 0], [4, 4]).unwrap();
        let Reply::Records(before) = e.execute(Op::Query(q)).unwrap() else {
            unreachable!()
        };
        assert_eq!(before.len(), 16);
        e.execute(Op::Delete(Point::new([1, 1]))).unwrap();
        // Pending writes are invisible to rect queries...
        let Reply::Records(mid) = e.execute(Op::Query(q)).unwrap() else {
            unreachable!()
        };
        assert_eq!(mid.len(), 16);
        // ...until the epoch boundary.
        e.flush().unwrap();
        let Reply::Records(after) = e.execute(Op::Query(q)).unwrap() else {
            unreachable!()
        };
        assert_eq!(after.len(), 15);
    }

    #[test]
    fn epoch_threshold_auto_flushes() {
        let e = engine(16, 2, 4);
        for i in 0..7u32 {
            e.execute(Op::Insert(Point::new([i, 0]), 1000 + i)).unwrap();
        }
        // 7 writes at threshold 4: one auto-flush at the 4th, 3 pending.
        assert_eq!(e.epoch(), 1);
        assert_eq!(e.pending(), 3);
        let stats = e.stats();
        assert_eq!(stats.writes, 7);
        assert_eq!(stats.epochs, 1);
        assert_eq!(stats.pending, 3);
        e.flush().unwrap();
        assert_eq!(e.epoch(), 2);
        assert_eq!(e.flush().unwrap(), 0, "empty flush is a no-op");
        assert_eq!(e.epoch(), 2, "empty flush counts no epoch");
    }

    #[test]
    fn invalid_ops_error_without_corrupting_state() {
        let e = engine(8, 2, 100);
        assert!(e.execute(Op::Get(Point::new([8, 0]))).is_err());
        assert!(e.execute(Op::Insert(Point::new([0, 8]), 1)).is_err());
        assert!(e
            .execute(Op::Query(RectQuery::new([5, 5], [5, 5]).unwrap()))
            .is_err());
        assert_eq!(e.pending(), 0, "invalid writes are not admitted");
        assert_eq!(e.table().len(), 64);
    }

    #[test]
    fn explain_reports_without_executing() {
        let e = engine(32, 4, 100);
        let q = RectQuery::new([3, 3], [20, 9]).unwrap();
        let plan = e.explain(&q).unwrap();
        assert!(plan.clusters >= 1);
        assert!(!plan.explain().is_empty());
        assert_eq!(e.stats().queries, 0, "explain is not an execution");
        let (result, executed) = e.query(&q).unwrap();
        assert_eq!(result.records.len() as u64, q.volume());
        assert_eq!(executed.clusters, plan.clusters);
        assert_eq!(e.stats().queries, 1);
    }

    #[test]
    fn into_table_flushes_first() {
        let e = engine(8, 2, 1_000_000);
        e.execute(Op::Update(Point::new([2, 2]), 777)).unwrap();
        let table = e.into_table().unwrap();
        assert_eq!(
            table.get(Point::new([2, 2])).unwrap().map(|g| g.value),
            Some(777)
        );
    }
}
