//! Durable serving: crash recovery riding the epoch write path.
//!
//! A durable [`Engine`] puts the PR-3 epoch machinery on disk. The unit
//! of logging is exactly the unit of application — the epoch batch — so
//! the commit protocol is one rule deep:
//!
//! 1. **Commit:** [`Engine::flush`] encodes each staged batch as one
//!    checksummed WAL frame (into a reused buffer — steady-state commits
//!    allocate nothing), appends it, and hands the fsync to a dedicated
//!    sync thread, so the encode and apply of epoch `N+1` overlap the
//!    fsync of epoch `N`. The **commit point is unchanged**: an explicit
//!    `flush` returns `Ok` only once every epoch it covers is appended
//!    *and* fsynced — the synced append — and auto-flushed epochs become
//!    durable in the background, in order, bounded by
//!    [`CommitPolicy::max_epochs`](crate::CommitPolicy::max_epochs)
//!    frames of lag ([`CommitPolicy::synchronous`](crate::CommitPolicy)
//!    restores the strictly write-ahead append+fsync-then-apply path).
//!    Concurrent flushers **group-commit**: one leader stages everything
//!    admitted so far and everyone shares its epochs and syncs.
//! 2. **Recover:** [`Engine::open`] rebuilds the table from the last
//!    snapshot (entries in curve order, re-cut at this table's shard
//!    boundaries) and re-applies every WAL frame with a later epoch,
//!    coalesced into one batch through the same
//!    [`ShardedTable::apply_batch`] path live traffic uses — which
//!    applies per-shard slices in parallel, so replay scales with shards.
//!    Replay is deterministic across shard counts — the batch is sorted
//!    by curve key and same-key ops keep submission order (also across
//!    frame boundaries, which is why coalescing frames is sound) — so a
//!    log written by a 3-shard engine recovers bit-identically into 1 or
//!    8 shards.
//! 3. **Compact:** [`Engine::checkpoint`] flushes, writes a
//!    point-in-time snapshot (atomic rename, fsynced), and truncates the
//!    log — absorbing any still-in-flight frame syncs, since the snapshot
//!    now carries their epochs. Epoch numbering continues across
//!    checkpoints and restarts.
//!
//! **Crash-consistency contract:** dropping (or killing) the process at
//! any instant recovers the state of an *epoch boundary* — the largest
//! prefix of flush-acknowledged epochs whose frames survived intact.
//! Pipelining preserves this shape: frames are appended in epoch order
//! and fsync covers file prefixes, so whatever subset of in-flight
//! frames reaches the disk is itself an epoch-boundary prefix. A torn
//! trailing frame (crash mid-append) is detected by length/checksum and
//! truncated; it never surfaces as a half-applied epoch. Writes that
//! were admitted ([`Reply::Admitted`](crate::Reply::Admitted)) but not yet
//! flushed are not covered — durability is acknowledged by `flush`, not
//! by admission or by the auto-flush cadence. Dropping the engine drains
//! the pipeline (a final fsync), so clean shutdown loses nothing. The
//! recovery proptests drive byte-offset truncation, multi-curve and
//! multi-shard reopening, and group-commit/pipelined-vs-synchronous
//! byte-identity of the log itself.
//!
//! If an fsync **fails**, the pipeline poisons itself: already-applied
//! epochs past the failure stay served from memory, but every further
//! commit (and every explicit `flush`/`checkpoint`) returns the sync
//! error and [`EngineStats::flush_failures`](crate::EngineStats)
//! grows — the log device needs attention and the engine should be
//! reopened. This is the same fail-stop posture the synchronous path
//! takes, surfaced at the next acknowledgement point instead of inside
//! the (unacknowledged) auto-flush.
//!
//! Durability is strictly pay-as-you-go: an engine built with
//! [`Engine::new`] carries `None` state and its flush path is byte-for-
//! byte the in-memory one (a single `Option` test per epoch, no I/O, no
//! sync thread).

use crate::engine::{Engine, EngineConfig};
use onion_core::{SfcError, SpaceFillingCurve};
use sfc_index::wal::encode_epoch_payload_into;
use sfc_index::{
    read_snapshot, write_snapshot, Backend, BatchOp, DiskModel, FileBackend, PageStore,
    PagedBackend, Record, ShardedTable, StoreConfig, StoreFactory, Wal, WalCodec,
};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// File name of the write-ahead log inside a durable engine's directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a durable engine's directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Subdirectory holding a disk-resident engine's segment files (see
/// [`Engine::open_stored`]).
pub const SEGMENT_DIR: &str = "segments";

/// The open log plus the reusable payload buffer synchronous commits
/// encode into — one lock guards both, so the encode-append sequence is
/// a single critical section with no allocation.
struct WalWriter {
    wal: Wal,
    payload: Vec<u8>,
}

/// State shared between the engine and its WAL sync thread: the queue of
/// encoded-but-unwritten frame payloads, which epochs have been
/// committed (`requested`) and which are known durable (`synced`), plus
/// the poison slot for a failed append or fsync.
struct SyncState {
    /// Encoded payloads handed off by `commit`, in epoch order, awaiting
    /// the sync thread's append+fsync pass. Commit touches neither the
    /// file nor the checksum: the write path pays one encode and one
    /// queue push per epoch, and the frame assembly (CRC included), the
    /// appends, and the fsync all happen on the sync thread, overlapped
    /// with the next epochs' admissions and applies.
    pending: std::collections::VecDeque<(u64, Vec<u8>)>,
    /// Recycled payload buffers: the steady-state pipeline allocates
    /// nothing.
    spare: Vec<Vec<u8>>,
    /// Highest epoch committed to the pipeline (queued or appended).
    requested: u64,
    /// Highest epoch whose frame is appended *and* fsync-confirmed.
    /// `synced == requested` means the pipeline is drained.
    synced: u64,
    /// The first fsync failure, kept permanently: a failed fsync leaves
    /// the kernel's view of earlier writes undefined, so the pipeline
    /// refuses further commits rather than guessing (reopen to recover).
    failed: Option<String>,
    /// Threads blocked in [`SyncShared::wait_synced`]/`drain` right now.
    /// The sync thread syncs eagerly while anyone waits, and lazily
    /// (letting frames accumulate up to the pipeline window) otherwise —
    /// an fsync also contends with concurrent appends on the file's
    /// inode lock, so an unneeded sync slows the write path twice.
    waiters: usize,
    /// Set by `Drop`: the sync thread drains outstanding work, then
    /// exits.
    shutdown: bool,
}

/// The condvar pair around [`SyncState`]: `work` wakes the sync thread,
/// `done` wakes commit backpressure and durability waiters.
struct SyncShared {
    state: Mutex<SyncState>,
    work: Condvar,
    done: Condvar,
    /// Unsynced-frame count at which the sync thread acts without being
    /// asked (one below the pipeline window, so commits never stall).
    trigger: u64,
}

impl SyncShared {
    fn new(recovered_epoch: u64, trigger: u64) -> Self {
        SyncShared {
            state: Mutex::new(SyncState {
                pending: std::collections::VecDeque::new(),
                spare: Vec::new(),
                requested: recovered_epoch,
                synced: recovered_epoch,
                failed: None,
                waiters: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            trigger,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SyncState> {
        self.state.lock().expect("WAL sync state poisoned")
    }

    /// A recycled payload buffer for the next commit to encode into.
    fn payload_buf(&self) -> Vec<u8> {
        self.lock().spare.pop().unwrap_or_default()
    }

    /// Queues `epoch`'s encoded payload for the sync thread, waking it
    /// only when it would actually act — an unconditional wakeup would
    /// cost a context switch per epoch just for the thread to decide to
    /// keep being lazy.
    fn enqueue(&self, epoch: u64, payload: Vec<u8>) {
        let mut st = self.lock();
        st.pending.push_back((epoch, payload));
        st.requested = st.requested.max(epoch);
        if st.waiters > 0 || st.requested - st.synced >= self.trigger || st.shutdown {
            self.work.notify_all();
        }
    }

    /// Marks epochs up to `epoch` durable without an fsync of our own —
    /// used by synchronous commits (which fsync inline) and by
    /// checkpoints (whose snapshot supersedes the log, making any still-
    /// queued payloads obsolete). Absorbing also clears a poisoned
    /// pipeline: the caller has just made every applied epoch durable
    /// through an independent, fully synced channel (the snapshot), so
    /// refusing further commits would contradict the durability it
    /// re-established.
    fn absorb(&self, epoch: u64) {
        let mut st = self.lock();
        st.pending.clear();
        st.requested = st.requested.max(epoch);
        st.synced = st.synced.max(epoch);
        st.failed = None;
        self.done.notify_all();
    }

    /// Backpressure: waits until appending `epoch` would leave at most
    /// `depth` frames in flight, or the pipeline is poisoned.
    fn acquire_slot(&self, epoch: u64, depth: usize) -> Result<(), SfcError> {
        let mut st = self.lock();
        loop {
            if let Some(e) = &st.failed {
                return Err(pipeline_poisoned(e));
            }
            if epoch.saturating_sub(st.synced) <= depth as u64 {
                return Ok(());
            }
            st = self.done.wait(st).expect("WAL sync state poisoned");
        }
    }

    /// Blocks until every epoch up to `epoch` is durable (or poisoned).
    /// Registers as a waiter, which flips the lazy sync thread into
    /// eager mode for the duration.
    fn wait_synced(&self, epoch: u64) -> Result<(), SfcError> {
        let mut st = self.lock();
        if st.synced >= epoch {
            return Ok(());
        }
        st.waiters += 1;
        self.work.notify_all();
        let result = loop {
            if st.synced >= epoch {
                break Ok(());
            }
            if let Some(e) = &st.failed {
                break Err(pipeline_poisoned(e));
            }
            st = self.done.wait(st).expect("WAL sync state poisoned");
        };
        st.waiters -= 1;
        result
    }

    /// Waits until no frame sync is in flight (`synced == requested`),
    /// ignoring poisoning — the rollback path needs quiescence whatever
    /// the outcome.
    fn drain(&self) {
        let mut st = self.lock();
        if st.failed.is_some() || st.synced >= st.requested {
            return;
        }
        st.waiters += 1;
        self.work.notify_all();
        while st.failed.is_none() && st.synced < st.requested {
            st = self.done.wait(st).expect("WAL sync state poisoned");
        }
        st.waiters -= 1;
    }

    /// Clamps both watermarks back to `epoch` and drops any queued
    /// payloads above it — the rollback path, after the frame above
    /// `epoch` has been truncated away (or never landed).
    fn retract(&self, epoch: u64) {
        let mut st = self.lock();
        st.pending.retain(|&(e, _)| e <= epoch);
        st.requested = st.requested.min(epoch);
        st.synced = st.synced.min(epoch);
        self.done.notify_all();
    }
}

/// Formats the permanent poison error of a failed pipeline fsync.
fn pipeline_poisoned(cause: &str) -> SfcError {
    SfcError::Storage {
        context: format!(
            "WAL sync pipeline failed and refuses further commits \
             (reopen the engine to recover): {cause}"
        ),
    }
}

/// The sync thread: drains the queue of encoded payloads — framing,
/// checksumming, and appending each in epoch order — then fsyncs once,
/// covering the whole group (fsync is a file-prefix barrier, so one sync
/// confirms all outstanding epochs — group commit at the disk). The
/// write path's own thread never touches the file or the checksum.
///
/// It acts *lazily*: only when a thread is actually waiting for
/// durability, when the backlog nears the pipeline window (`trigger`
/// frames — so commits never stall on backpressure in steady state), or
/// on shutdown. Batching the appends also means the file's inode is
/// touched once per group rather than once per epoch, and never from two
/// threads at once. Exits after draining on shutdown, so dropping an
/// engine loses nothing.
fn run_syncer(file: File, wal: Arc<Mutex<WalWriter>>, shared: Arc<SyncShared>) {
    let trigger = shared.trigger;
    let mut st = shared.lock();
    loop {
        let backlog = st.requested - st.synced;
        if st.failed.is_none()
            && backlog > 0
            && (st.waiters > 0 || backlog >= trigger || st.shutdown)
        {
            let target = st.requested;
            let group: Vec<(u64, Vec<u8>)> = st.pending.drain(..).collect();
            drop(st);
            let mut result = Ok(());
            if !group.is_empty() {
                let mut w = wal.lock().expect("WAL handle poisoned");
                // One buffered write for the whole group: one syscall,
                // one inode touch, per fsync.
                if let Err(e) = w.wal.append_payloads_unsynced(&group) {
                    result = Err(format!("appending epoch group: {e}"));
                }
            }
            // Sync outside the WAL lock: `wal_len` readers and a
            // concurrent rollback drain stay responsive during the I/O.
            if result.is_ok() {
                result = file
                    .sync_data()
                    .map_err(|e| format!("syncing WAL frames: {e}"));
            }
            st = shared.lock();
            match result {
                Ok(()) => {
                    st.synced = st.synced.max(target);
                    // Recycle the payload buffers for future commits.
                    for (_, mut buf) in group {
                        buf.clear();
                        st.spare.push(buf);
                    }
                }
                Err(e) => st.failed = Some(e),
            }
            shared.done.notify_all();
            continue;
        }
        if st.shutdown {
            return;
        }
        st = shared.work.wait(st).expect("WAL sync state poisoned");
    }
}

/// The durable half of an engine: the open WAL (plus its reusable encode
/// buffer), the directory it lives in, a monomorphized frame encoder,
/// and the sync pipeline.
///
/// The encoder is a plain `fn` pointer captured where the `V: WalCodec`
/// bound is known (at open time), so the engine's shared flush path can
/// commit frames without dragging a codec bound onto every engine
/// method — non-durable engines keep compiling for payloads that have no
/// byte representation.
pub(crate) struct Durability<const D: usize, V> {
    dir: PathBuf,
    wal: Arc<Mutex<WalWriter>>,
    encode: fn(u64, &[BatchOp<D, V>], &mut Vec<u8>),
    /// Monomorphized history readers, captured like `encode` where the
    /// `V: WalCodec` bound is known: the time-travel fallback
    /// ([`Self::historical_state`]) re-reads `snapshot + WAL prefix`
    /// through them without dragging a codec bound onto the engine's
    /// query path.
    read_frames: fn(&mut Wal) -> Result<Vec<sfc_index::EpochFrame<D, V>>, SfcError>,
    read_snapshot: ReadSnapshotFn<D, V>,
    sync: Arc<SyncShared>,
    syncer: Option<JoinHandle<()>>,
    /// [`CommitPolicy::max_epochs`](crate::CommitPolicy::max_epochs):
    /// pipeline depth; `0` = synchronous commits.
    depth: usize,
}

/// Alias for the monomorphized snapshot reader a durable engine captures
/// at open time.
type ReadSnapshotFn<const D: usize, V> =
    fn(&Path) -> Result<Option<(u64, Vec<(u64, Record<D, V>)>)>, SfcError>;

impl<const D: usize, V> Durability<D, V> {
    /// Commits one epoch frame. Called by the flush path under the apply
    /// gate, so commits are totally ordered and epochs strictly increase.
    ///
    /// With `depth == 0` this is the synchronous append+fsync of PR 4 —
    /// when it returns, the epoch is durable. With a positive depth the
    /// payload is encoded (into a recycled buffer — no allocation, no
    /// checksum, no syscall on this thread) and queued for the sync
    /// thread, which frames, appends, and fsyncs whole groups in epoch
    /// order; the call blocks only when more than `depth` epochs are
    /// already in flight. Epochs become durable in commit order either
    /// way.
    pub(crate) fn commit(&self, epoch: u64, ops: &[BatchOp<D, V>]) -> Result<(), SfcError> {
        if self.depth == 0 {
            let mut w = self.wal.lock().expect("WAL handle poisoned");
            let WalWriter { wal, payload } = &mut *w;
            (self.encode)(epoch, ops, payload);
            wal.append_payload(epoch, payload)?;
            self.sync.absorb(epoch);
            return Ok(());
        }
        self.sync.acquire_slot(epoch, self.depth)?;
        let mut payload = self.sync.payload_buf();
        (self.encode)(epoch, ops, &mut payload);
        self.sync.enqueue(epoch, payload);
        Ok(())
    }

    /// Blocks until every epoch up to `epoch` is fsync-confirmed — the
    /// commit point explicit flushes acknowledge.
    pub(crate) fn wait_durable(&self, epoch: u64) -> Result<(), SfcError> {
        self.sync.wait_synced(epoch)
    }

    /// Highest fsync-confirmed epoch.
    pub(crate) fn synced_epoch(&self) -> u64 {
        self.sync.lock().synced
    }

    /// Un-commits `epoch` — the frame [`Self::commit`] just wrote (or
    /// queued) — when the in-memory apply fails after a successful
    /// commit, keeping log and table in lockstep. Drains any in-flight
    /// sync first so the truncation cannot race an fsync of the very
    /// frame being removed, and truncates only if the frame actually
    /// landed: if the pipeline poisoned before appending it (a
    /// double-fault — apply *and* WAL I/O failing), the log already
    /// ends at an older, still-acknowledged frame, which must not be
    /// cut away.
    pub(crate) fn rollback_last(&self, epoch: u64) -> Result<(), SfcError> {
        self.sync.drain();
        let mut w = self.wal.lock().expect("WAL handle poisoned");
        if w.wal.last_epoch() == epoch {
            w.wal.rollback_last()?;
        }
        self.sync.retract(w.wal.last_epoch());
        Ok(())
    }

    /// Reconstructs the raw material of epoch `epoch`'s state from disk:
    /// the last snapshot's entries plus every WAL frame in
    /// `(snapshot_epoch, epoch]`, concatenated in commit order — the cold
    /// half of [`Engine::query_as_of`](crate::Engine::query_as_of), taken
    /// when the retention window no longer holds the epoch in memory.
    ///
    /// Returns `None` when the log can no longer reach that far back: a
    /// checkpoint whose snapshot is *newer* than `epoch` has absorbed and
    /// truncated the frames that led up to it.
    ///
    /// Drains the sync pipeline first so every committed frame is
    /// physically appended, then holds the WAL mutex across both reads —
    /// a concurrent checkpoint cannot truncate frames between the
    /// snapshot read and the prefix read.
    pub(crate) fn historical_state(&self, epoch: u64) -> Result<HistoricalState<D, V>, SfcError> {
        self.sync.drain();
        let mut w = self.wal.lock().expect("WAL handle poisoned");
        let (snapshot_epoch, entries) = match (self.read_snapshot)(&self.dir.join(SNAPSHOT_FILE))? {
            Some((e, entries)) => (e, entries),
            None => (0, Vec::new()),
        };
        if snapshot_epoch > epoch {
            return Ok(None);
        }
        let mut ops: Vec<BatchOp<D, V>> = Vec::new();
        for frame in (self.read_frames)(&mut w.wal)? {
            if frame.epoch <= snapshot_epoch {
                continue;
            }
            if frame.epoch > epoch {
                break;
            }
            ops.extend(frame.ops);
        }
        Ok(Some((entries, ops)))
    }

    /// Reads every committed WAL frame with `epoch > from_excl`, in
    /// commit order — the catch-up half of epoch replication: a replica
    /// that subscribed at epoch `e` fetches `frames_since(e)` once, then
    /// switches to the live feed.
    ///
    /// Drains the sync pipeline first so every acknowledged frame is
    /// physically appended before the read. Frames a checkpoint has
    /// already truncated are gone; callers that need deeper history
    /// must bootstrap from a snapshot instead.
    pub(crate) fn frames_since(
        &self,
        from_excl: u64,
    ) -> Result<Vec<sfc_index::EpochFrame<D, V>>, SfcError> {
        self.sync.drain();
        let mut w = self.wal.lock().expect("WAL handle poisoned");
        let mut frames = (self.read_frames)(&mut w.wal)?;
        // The log's oldest frame bounds how far back catch-up reaches:
        // resuming after `from_excl` needs frame `from_excl + 1` onward.
        // If a checkpoint truncated past that, say so with the horizon
        // rather than silently replaying a gapped history.
        if let Some(first) = frames.first() {
            if from_excl + 1 < first.epoch {
                return Err(SfcError::EpochTruncated {
                    requested: from_excl,
                    horizon: first.epoch - 1,
                });
            }
        }
        frames.retain(|f| f.epoch > from_excl);
        Ok(frames)
    }
}

/// What [`Durability::historical_state`] yields: snapshot entries plus
/// the WAL-prefix ops that bring them to the requested epoch (`None` if
/// a checkpoint already absorbed that history).
pub(crate) type HistoricalState<const D: usize, V> =
    Option<(Vec<(u64, Record<D, V>)>, Vec<BatchOp<D, V>>)>;

impl<const D: usize, V> Drop for Durability<D, V> {
    fn drop(&mut self) {
        if let Some(handle) = self.syncer.take() {
            if let Ok(mut st) = self.sync.state.lock() {
                st.shutdown = true;
            }
            self.sync.work.notify_all();
            let _ = handle.join();
        }
    }
}

impl<const D: usize, C, V> Engine<C, V, D>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    /// Opens (or creates) a durable engine over in-memory shard backends
    /// at `dir`: restores the snapshot if one exists, replays the WAL
    /// suffix, and leaves the log open for committing future epochs.
    /// The state recovered is exactly the last acknowledged epoch
    /// boundary (see the [module docs](crate::durable)).
    ///
    /// `curve` must be the curve the directory was written with: curve
    /// keys are persisted, not re-derived. `shard_count` is free to
    /// differ from the writing engine's — recovery re-partitions.
    ///
    /// # Errors
    /// On I/O failure, if another live engine holds this directory's
    /// WAL (an OS advisory lock, released automatically if that process
    /// dies), on a corrupt snapshot or mistyped WAL, or on persisted
    /// keys that do not fit `curve`'s universe.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn open(
        dir: impl AsRef<Path>,
        curve: C,
        model: DiskModel,
        shard_count: usize,
        config: EngineConfig,
    ) -> Result<Self, SfcError> {
        let table = ShardedTable::build(curve, Vec::new(), model, shard_count)?;
        Self::open_with(dir.as_ref(), table, config)
    }
}

impl<const D: usize, C, V> Engine<C, V, D, PagedBackend<Record<D, V>>>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    /// [`Engine::open`] over paged (buffer-pooled) shard backends; see
    /// [`ShardedTable::build_paged`] for the `pool_pages` knob.
    ///
    /// # Errors
    /// As for [`Engine::open`].
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn open_paged(
        dir: impl AsRef<Path>,
        curve: C,
        model: DiskModel,
        shard_count: usize,
        pool_pages: usize,
        config: EngineConfig,
    ) -> Result<Self, SfcError> {
        let table = ShardedTable::build_paged(curve, Vec::new(), model, shard_count, pool_pages)?;
        Self::open_with(dir.as_ref(), table, config)
    }
}

impl<const D: usize, C, V> Engine<C, V, D, FileBackend<Record<D, V>>>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
    Record<D, V>: WalCodec,
{
    /// [`Engine::open`] over genuinely disk-resident shard backends: each
    /// shard keeps its records in an immutable segment file under
    /// `dir/segments/`, rebuilt from `snapshot + WAL suffix` on open and
    /// re-materialized by [`Engine::checkpoint`] (which compacts the
    /// shards' write overlays into fresh segments after truncating the
    /// log). Queries report measured `real_reads` / `real_seeks` next to
    /// the simulated counters.
    ///
    /// # Errors
    /// As for [`Engine::open`], plus segment build I/O failures.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn open_stored(
        dir: impl AsRef<Path>,
        curve: C,
        model: DiskModel,
        shard_count: usize,
        store: StoreConfig,
        config: EngineConfig,
    ) -> Result<Self, SfcError> {
        let dir = dir.as_ref();
        let table = ShardedTable::build_stored(
            curve,
            Vec::new(),
            model,
            shard_count,
            &dir.join(SEGMENT_DIR),
            store,
        )?;
        Self::open_with(dir, table, config)
    }
}

impl<const D: usize, C, V, S> Engine<C, V, D, FileBackend<Record<D, V>, S>>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
    Record<D, V>: WalCodec,
    S: PageStore + 'static,
{
    /// [`Engine::open_stored`] with an explicit [`StoreFactory`] — the
    /// hook fault-injecting test stores ride in through: every page store
    /// the engine's segments ever open (including checkpoint-compacted
    /// generations) is produced by `factory`.
    ///
    /// # Errors
    /// As for [`Engine::open_stored`].
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn open_stored_with(
        dir: impl AsRef<Path>,
        curve: C,
        model: DiskModel,
        shard_count: usize,
        store: StoreConfig,
        factory: StoreFactory<S>,
        config: EngineConfig,
    ) -> Result<Self, SfcError> {
        let dir = dir.as_ref();
        let table = ShardedTable::build_stored_with(
            curve,
            Vec::new(),
            model,
            shard_count,
            &dir.join(SEGMENT_DIR),
            store,
            factory,
        )?;
        Self::open_with(dir, table, config)
    }
}

impl<const D: usize, C, V, B> Engine<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
    B: Backend<Record<D, V>> + Send + Sync,
{
    /// Shared recovery: restore `snapshot + WAL suffix` into the (empty)
    /// `table`, then wire the log into the engine's flush path.
    fn open_with(
        dir: &Path,
        table: ShardedTable<C, V, D, B>,
        config: EngineConfig,
    ) -> Result<Self, SfcError> {
        std::fs::create_dir_all(dir).map_err(|e| SfcError::Storage {
            context: format!("creating durable engine directory: {e}"),
        })?;
        let snapshot_epoch = match read_snapshot::<D, V>(&dir.join(SNAPSHOT_FILE))? {
            Some((epoch, entries)) => {
                table.restore_entries(entries)?;
                epoch
            }
            None => 0,
        };
        let (wal, frames) = Wal::open::<D, V>(&dir.join(WAL_FILE))?;
        // Coalesce the replayable frames into one batch through the live
        // apply path: `apply_batch` stable-sorts by curve key and keeps
        // same-key submission order across the concatenation, so one
        // parallel-applied batch lands on exactly the per-epoch state —
        // and replay cost scales with shards instead of frame count.
        let mut epoch = snapshot_epoch;
        let mut replay: Vec<BatchOp<D, V>> = Vec::new();
        for frame in frames {
            // Frames at or below the snapshot's epoch are stale: a crash
            // between snapshot publication and log truncation leaves
            // them behind, already absorbed by the snapshot.
            if frame.epoch <= snapshot_epoch {
                continue;
            }
            replay.extend(frame.ops);
            epoch = frame.epoch;
        }
        if !replay.is_empty() {
            table.apply_batch(replay)?;
        }
        // Act one frame before the window fills, so steady-state commits
        // never block in `acquire_slot`.
        let trigger = (config.commit.max_epochs as u64).saturating_sub(1).max(1);
        let sync = Arc::new(SyncShared::new(epoch, trigger));
        let file = wal.sync_handle()?;
        let wal = Arc::new(Mutex::new(WalWriter {
            wal,
            payload: Vec::new(),
        }));
        // Synchronous policy (depth 0) commits inline and never enqueues:
        // no sync thread to spawn, park, or join.
        let syncer = if config.commit.max_epochs == 0 {
            None
        } else {
            let shared = Arc::clone(&sync);
            let wal = Arc::clone(&wal);
            Some(
                std::thread::Builder::new()
                    .name("sfc-wal-sync".into())
                    .spawn(move || run_syncer(file, wal, shared))
                    .map_err(|e| SfcError::Storage {
                        context: format!("spawning WAL sync thread: {e}"),
                    })?,
            )
        };
        let mut engine = Engine::new(table, config);
        engine.set_recovered_epoch(epoch);
        engine.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal,
            encode: encode_epoch_payload_into::<D, V>,
            read_frames: Wal::read_frames::<D, V>,
            read_snapshot: read_snapshot::<D, V>,
            sync,
            syncer,
            depth: config.commit.max_epochs,
        });
        Ok(engine)
    }

    /// Compacts the log into a snapshot: flushes pending writes, writes
    /// a point-in-time snapshot of the whole table in curve order
    /// (atomic temp-file + rename, fsynced), then truncates the WAL —
    /// absorbing any frame syncs still in flight, since the snapshot now
    /// carries their epochs. Returns the epoch the snapshot captures.
    /// Concurrent readers keep being served throughout; concurrent
    /// flushes wait at the commit queue.
    ///
    /// Crash-safe at every step: before the rename the old snapshot
    /// still pairs with the full log; after the rename but before the
    /// truncation, replay skips the frames the snapshot absorbed.
    ///
    /// # Errors
    /// If called on a non-durable engine, or on I/O failure.
    pub fn checkpoint(&self) -> Result<u64, SfcError> {
        // Refuse before flushing: an error from a misconfigured call
        // must not leave visible side effects (applied epochs).
        let Some(d) = &self.durability else {
            return Err(SfcError::Storage {
                context: "checkpoint called on a non-durable engine (use Engine::open)".into(),
            });
        };
        self.acquire_lead();
        let result = (|| {
            let _gate = self.lock_apply_gate();
            self.flush_gated()?;
            // Quiesce the pipeline before touching the file, so the sync
            // thread cannot append a queued frame *after* the reset and
            // resurrect epochs the snapshot already absorbed.
            d.sync.drain();
            let epoch = self.epoch();
            write_snapshot(&d.dir.join(SNAPSHOT_FILE), epoch, self.table())?;
            d.wal.lock().expect("WAL handle poisoned").wal.reset()?;
            // The snapshot (written and fsynced above) now carries every
            // epoch the truncated frames held: mark them durable.
            d.sync.absorb(epoch);
            // Fold each shard's write overlay into a fresh base segment
            // (a no-op for in-memory backends). Durability does not
            // depend on this: the snapshot above is the recovery source,
            // so a compaction failure leaves a consistent engine serving
            // the pre-compaction version — but the error is surfaced so
            // operators see the segment rewrite was skipped.
            self.table().compact_shards()?;
            Ok(epoch)
        })();
        self.finish_lead();
        result
    }

    /// Whether this engine commits epochs to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durable engine's data directory (`None` for in-memory
    /// engines).
    pub fn data_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Bytes of committed frames currently in the WAL (`None` for
    /// in-memory engines). After an explicit [`Engine::flush`] returns,
    /// everything up to this offset survives any crash — the
    /// observability hook the crash-point tests key on, and a practical
    /// "time to checkpoint?" signal. (Mid-pipeline, recently committed
    /// epochs may still sit in the sync thread's queue, not yet counted
    /// here; compare [`Engine::durable_epoch`] with [`Engine::epoch`]
    /// for the lag.)
    pub fn wal_len(&self) -> Option<u64> {
        self.durability
            .as_ref()
            .map(|d| d.wal.lock().expect("WAL handle poisoned").wal.len())
    }
}
