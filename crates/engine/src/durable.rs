//! Durable serving: crash recovery riding the epoch write path.
//!
//! A durable [`Engine`] puts the PR-3 epoch machinery on disk. The unit
//! of logging is exactly the unit of application — the epoch batch — so
//! the commit protocol is one rule deep:
//!
//! 1. **Commit:** [`Engine::flush`] encodes the staged batch as one
//!    checksummed WAL frame, appends it, and syncs — *then* calls
//!    [`ShardedTable::apply_batch`]. The synced append is the commit
//!    point: when `flush` returns, the epoch survives any crash.
//! 2. **Recover:** [`Engine::open`] rebuilds the table from the last
//!    snapshot (entries in curve order, re-cut at this table's shard
//!    boundaries) and re-applies every WAL frame with a later epoch,
//!    through the same `apply_batch` path live traffic uses. Replay is
//!    deterministic across shard counts — the batch is sorted by curve
//!    key and same-key ops keep submission order — so a log written by a
//!    3-shard engine recovers bit-identically into 1 or 8 shards.
//! 3. **Compact:** [`Engine::checkpoint`] flushes, writes a
//!    point-in-time snapshot (atomic rename), and truncates the log.
//!    Epoch numbering continues across checkpoints and restarts.
//!
//! **Crash-consistency contract:** dropping (or killing) the process at
//! any instant recovers the state of an *epoch boundary* — the largest
//! prefix of flush-acknowledged epochs whose frames survived intact. A
//! torn trailing frame (crash mid-append) is detected by length/checksum
//! and truncated; it never surfaces as a half-applied epoch. Writes that
//! were admitted ([`Reply::Queued`](crate::Reply::Queued)) but not yet
//! flushed are not covered — durability is acknowledged by `flush`, not
//! by admission. The recovery proptests drive both truncation at every
//! byte offset and multi-curve/multi-shard reopening.
//!
//! Durability is strictly pay-as-you-go: an engine built with
//! [`Engine::new`] carries `None` state and its flush path is byte-for-
//! byte the in-memory one (a single `Option` test per epoch, no I/O).

use crate::engine::{Engine, EngineConfig};
use onion_core::{SfcError, SpaceFillingCurve};
use sfc_index::wal::encode_epoch_payload;
use sfc_index::{
    read_snapshot, write_snapshot, Backend, BatchOp, DiskModel, PagedBackend, Record, ShardedTable,
    Wal, WalCodec,
};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File name of the write-ahead log inside a durable engine's directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a durable engine's directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// The durable half of an engine: the open WAL, the directory it lives
/// in, and a monomorphized frame encoder.
///
/// The encoder is a plain `fn` pointer captured where the `V: WalCodec`
/// bound is known (at open time), so the engine's shared flush path can
/// commit frames without dragging a codec bound onto every engine
/// method — non-durable engines keep compiling for payloads that have no
/// byte representation.
pub(crate) struct Durability<const D: usize, V> {
    dir: PathBuf,
    wal: Mutex<Wal>,
    encode: fn(u64, &[BatchOp<D, V>]) -> Vec<u8>,
}

impl<const D: usize, V> Durability<D, V> {
    /// Commits one epoch frame (append + sync). Called by `flush` under
    /// the apply gate, so commits are totally ordered.
    pub(crate) fn commit(&self, epoch: u64, ops: &[BatchOp<D, V>]) -> Result<(), SfcError> {
        let payload = (self.encode)(epoch, ops);
        self.wal
            .lock()
            .expect("WAL handle poisoned")
            .append_payload(epoch, payload)
    }

    /// Un-commits the frame [`Self::commit`] just wrote — the flush path
    /// calls this when the in-memory apply fails after a successful
    /// commit, keeping log and table in lockstep.
    pub(crate) fn rollback_last(&self) -> Result<(), SfcError> {
        self.wal
            .lock()
            .expect("WAL handle poisoned")
            .rollback_last()
    }
}

impl<const D: usize, C, V> Engine<C, V, D>
where
    C: SpaceFillingCurve<D>,
    V: Clone + WalCodec,
{
    /// Opens (or creates) a durable engine over in-memory shard backends
    /// at `dir`: restores the snapshot if one exists, replays the WAL
    /// suffix, and leaves the log open for committing future epochs.
    /// The state recovered is exactly the last acknowledged epoch
    /// boundary (see the [module docs](crate::durable)).
    ///
    /// `curve` must be the curve the directory was written with: curve
    /// keys are persisted, not re-derived. `shard_count` is free to
    /// differ from the writing engine's — recovery re-partitions.
    ///
    /// # Errors
    /// On I/O failure, if another live engine holds this directory's
    /// WAL (an OS advisory lock, released automatically if that process
    /// dies), on a corrupt snapshot or mistyped WAL, or on persisted
    /// keys that do not fit `curve`'s universe.
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn open(
        dir: impl AsRef<Path>,
        curve: C,
        model: DiskModel,
        shard_count: usize,
        config: EngineConfig,
    ) -> Result<Self, SfcError> {
        let table = ShardedTable::build(curve, Vec::new(), model, shard_count)?;
        Self::open_with(dir.as_ref(), table, config)
    }
}

impl<const D: usize, C, V> Engine<C, V, D, PagedBackend<Record<D, V>>>
where
    C: SpaceFillingCurve<D>,
    V: Clone + WalCodec,
{
    /// [`Engine::open`] over paged (buffer-pooled) shard backends; see
    /// [`ShardedTable::build_paged`] for the `pool_pages` knob.
    ///
    /// # Errors
    /// As for [`Engine::open`].
    ///
    /// # Panics
    /// If `shard_count` is zero.
    pub fn open_paged(
        dir: impl AsRef<Path>,
        curve: C,
        model: DiskModel,
        shard_count: usize,
        pool_pages: usize,
        config: EngineConfig,
    ) -> Result<Self, SfcError> {
        let table = ShardedTable::build_paged(curve, Vec::new(), model, shard_count, pool_pages)?;
        Self::open_with(dir.as_ref(), table, config)
    }
}

impl<const D: usize, C, V, B> Engine<C, V, D, B>
where
    C: SpaceFillingCurve<D>,
    V: Clone + WalCodec,
    B: Backend<Record<D, V>>,
{
    /// Shared recovery: restore `snapshot + WAL suffix` into the (empty)
    /// `table`, then wire the log into the engine's flush path.
    fn open_with(
        dir: &Path,
        table: ShardedTable<C, V, D, B>,
        config: EngineConfig,
    ) -> Result<Self, SfcError> {
        std::fs::create_dir_all(dir).map_err(|e| SfcError::Storage {
            context: format!("creating durable engine directory: {e}"),
        })?;
        let snapshot_epoch = match read_snapshot::<D, V>(&dir.join(SNAPSHOT_FILE))? {
            Some((epoch, entries)) => {
                table.restore_entries(entries)?;
                epoch
            }
            None => 0,
        };
        let (wal, frames) = Wal::open::<D, V>(&dir.join(WAL_FILE))?;
        let mut epoch = snapshot_epoch;
        for frame in frames {
            // Frames at or below the snapshot's epoch are stale: a crash
            // between snapshot publication and log truncation leaves
            // them behind, already absorbed by the snapshot.
            if frame.epoch <= snapshot_epoch {
                continue;
            }
            table.apply_batch(frame.ops)?;
            epoch = frame.epoch;
        }
        let mut engine = Engine::new(table, config);
        engine.set_recovered_epoch(epoch);
        engine.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal: Mutex::new(wal),
            encode: encode_epoch_payload::<D, V>,
        });
        Ok(engine)
    }

    /// Compacts the log into a snapshot: flushes pending writes, writes
    /// a point-in-time snapshot of the whole table in curve order
    /// (atomic temp-file + rename), then truncates the WAL. Returns the
    /// epoch the snapshot captures. Concurrent readers keep being
    /// served throughout; concurrent flushes wait at the apply gate.
    ///
    /// Crash-safe at every step: before the rename the old snapshot
    /// still pairs with the full log; after the rename but before the
    /// truncation, replay skips the frames the snapshot absorbed.
    ///
    /// # Errors
    /// If called on a non-durable engine, or on I/O failure.
    pub fn checkpoint(&self) -> Result<u64, SfcError> {
        // Refuse before flushing: an error from a misconfigured call
        // must not leave visible side effects (applied epochs).
        let Some(d) = &self.durability else {
            return Err(SfcError::Storage {
                context: "checkpoint called on a non-durable engine (use Engine::open)".into(),
            });
        };
        let _gate = self.lock_apply_gate();
        self.flush_gated()?;
        let epoch = self.epoch();
        write_snapshot(&d.dir.join(SNAPSHOT_FILE), epoch, self.table())?;
        d.wal.lock().expect("WAL handle poisoned").reset()?;
        Ok(epoch)
    }

    /// Whether this engine commits epochs to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durable engine's data directory (`None` for in-memory
    /// engines).
    pub fn data_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Bytes of committed frames currently in the WAL (`None` for
    /// in-memory engines). Everything up to this offset survives any
    /// crash — the observability hook the crash-point tests key on, and
    /// a practical "time to checkpoint?" signal.
    pub fn wal_len(&self) -> Option<u64> {
        self.durability
            .as_ref()
            .map(|d| d.wal.lock().expect("WAL handle poisoned").len())
    }
}
