//! # sfc-engine
//!
//! The concurrent serving layer over the `sfc-index` storage engine: an
//! [`Engine`] accepts an operation stream — point gets, rectangle queries,
//! inserts/updates/deletes — from any number of threads through `&self`,
//! and turns the Onion Curve paper's clustering guarantee into served
//! traffic:
//!
//! * **Reads** go straight to the [`ShardedTable`](sfc_index::ShardedTable):
//!   per-shard `RwLock`s
//!   mean readers of different shards never contend and readers of the
//!   same shard share the lock. Rectangle queries run through the
//!   [adaptive planner](sfc_index::Planner), which picks each query's
//!   decomposition budget from a cost model fed by the engine's own live
//!   I/O statistics ([`Engine::explain`] shows the decision).
//! * **Writes** are *admitted*, not applied: they enter a write log and
//!   are applied in **epochs** — the log is stably sorted into curve-key
//!   order and pushed through
//!   [`ShardedTable::apply_batch`](sfc_index::ShardedTable::apply_batch),
//!   so the
//!   B+-trees see sorted bulk mutations instead of random single inserts,
//!   each shard's write lock is held only for its slice of the batch, and
//!   readers atomically observe epoch boundaries per shard.
//!
//! Consistency model (what the proptests verify): **per-key
//! read-your-writes** at all times — a `Get` consults the pending log
//! before the table, so a submitted write is immediately visible to point
//! reads — and **full consistency at quiescent epoch boundaries**: once
//! [`Engine::flush`] returns (and no flush is concurrently applying),
//! rectangle queries equal what a single-threaded table that applied the
//! same ops would return. Rectangle queries do not read the pending log;
//! between boundaries they see applied epochs only. Epoch application is
//! atomic **per shard** (each shard flips from pre-batch to post-batch
//! under its write lock), not across shards: a rectangle query racing a
//! flush may observe some shards post-epoch and others pre-epoch. Callers
//! needing a cross-shard-exact scan should quiesce writes around it (or
//! flush and read before admitting more). Duplicates and the overlay:
//! `Op::Insert` on an *occupied* cell stores a second record, and point
//! gets return the **newest** record at the cell (B+-tree newest-
//! duplicate semantics) — the same record the overlay reported while the
//! write was pending — so per-key read-your-writes holds unconditionally
//! for `Insert` and `Update`. `Op::Delete` on a cell holding duplicates
//! removes only the **oldest** record, while the overlay answers `None`
//! until the epoch applies; read-your-writes for `Delete` therefore
//! holds on cells without duplicates, which every write path except
//! Insert-on-occupied preserves. Rectangle scans still return every
//! duplicate, in insertion order.
//!
//! * **Durability** (optional — [`Engine::open`]): the epoch batch is
//!   also the unit of logging. A durable engine commits each epoch to an
//!   append-only, checksummed write-ahead log and recovers `snapshot +
//!   WAL suffix` on reopen — dropping the engine (or the process) at any
//!   instant recovers the last acknowledged epoch boundary. Commits
//!   group-commit and pipeline: concurrent [`Engine::flush`] callers
//!   coalesce behind one leader, and frame appends + fsyncs run on a
//!   dedicated sync thread, overlapped with the next epochs' work, under
//!   a [`CommitPolicy`] — while an explicit `flush` still acknowledges
//!   only synced epochs. [`Engine::checkpoint`] compacts the log into a
//!   snapshot. See the [`durable`] module docs for the commit protocol
//!   and the crash-consistency contract; engines built with
//!   [`Engine::new`] pay nothing for any of it.
//!
//! ```
//! use onion_core::{Onion2D, Point};
//! use sfc_clustering::RectQuery;
//! use sfc_engine::{Engine, EngineConfig, Op, Reply};
//! use sfc_index::{DiskModel, ShardedTable};
//!
//! let table = ShardedTable::build(
//!     Onion2D::new(64).unwrap(),
//!     (0..64u32).map(|i| (Point::new([i, i]), i)).collect(),
//!     DiskModel::ssd(),
//!     4,
//! )
//! .unwrap();
//! let engine = Engine::new(table, EngineConfig::default());
//!
//! // Writes are admitted into the epoch log; gets see them immediately.
//! engine.execute(Op::Update(Point::new([3, 3]), 999)).unwrap();
//! assert_eq!(engine.execute(Op::Get(Point::new([3, 3]))).unwrap(), Reply::Value(Some(999)));
//!
//! // Rect queries see the new value once the epoch is applied.
//! engine.flush().unwrap();
//! let q = RectQuery::new([0, 0], [8, 8]).unwrap();
//! let Reply::Records(recs) = engine.execute(Op::Query(q)).unwrap() else { unreachable!() };
//! assert!(recs.iter().any(|r| r.value == 999));
//! ```
//!
//! The same stream against a durable engine survives a crash:
//!
//! ```
//! use onion_core::{Onion2D, Point};
//! use sfc_engine::{Engine, EngineConfig, Op, Reply};
//! use sfc_index::DiskModel;
//!
//! let dir = std::env::temp_dir().join(format!("sfc-engine-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let open = || {
//!     Engine::<Onion2D, u64, 2>::open(
//!         &dir, Onion2D::new(64).unwrap(), DiskModel::ssd(), 4, EngineConfig::default(),
//!     )
//!     .unwrap()
//! };
//!
//! let engine = open();
//! engine.execute(Op::Update(Point::new([3, 3]), 999)).unwrap();
//! engine.flush().unwrap(); // commit point: the epoch is now on disk
//! engine.execute(Op::Update(Point::new([4, 4]), 7)).unwrap();
//! drop(engine); // crash: the admitted-but-unflushed write is lost
//!
//! let recovered = open();
//! assert_eq!(recovered.epoch(), 1);
//! assert_eq!(recovered.execute(Op::Get(Point::new([3, 3]))).unwrap(), Reply::Value(Some(999)));
//! assert_eq!(recovered.execute(Op::Get(Point::new([4, 4]))).unwrap(), Reply::Value(None));
//! # drop(recovered);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durable;
mod engine;

pub use durable::{SNAPSHOT_FILE, WAL_FILE};
pub use engine::{
    Admitted, CommitPolicy, Engine, EngineConfig, EngineStats, EpochSubscription, FeedEvent, Op,
    Reply,
};
