//! The MVCC consistency contract, pinned by property tests:
//!
//! * **Every scan observes exactly one epoch:** concurrent rectangle
//!   scans racing a writer streaming `apply_batch` epochs — where each
//!   epoch rewrites every cell with its own epoch tag — must return
//!   records from a single epoch, byte-identical to that epoch's
//!   quiescent state, at 1, 2, and 5 shards and for every registry
//!   curve. A scan mixing two epochs' values (the old "scan may straddle
//!   an epoch" caveat) fails immediately.
//! * **`as_of(e)` equals the WAL prefix through `e`:** on a durable
//!   engine, time-travel reads answer exactly the single-threaded model
//!   of the first `e` epochs — both from the in-memory retention window
//!   and, for epochs evicted from it, from the `snapshot + WAL prefix`
//!   replay path; epochs older than a checkpoint's snapshot are refused.

use onion_core::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_baselines::{curve_2d, DynCurve, CURVE_NAMES};
use sfc_clustering::RectQuery;
use sfc_engine::{Engine, EngineConfig, Op, Reply};
use sfc_index::{BatchOp, DiskModel, QueryOptions, RetentionPolicy, ShardedTable, StoreConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

const SIDE: u32 = 8;

/// A fresh per-test directory under cargo's target tmpdir (inside the
/// workspace, wiped with `target/`).
fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One record per cell, tagged with epoch 0.
fn dense_records(side: u32) -> Vec<(Point<2>, u64)> {
    (0..side)
        .flat_map(|x| (0..side).map(move |y| (Point::new([x, y]), 0)))
        .collect()
}

/// The batch that moves every cell from epoch `e - 1` to epoch `e`:
/// updates every cell's value to `e`. Applied atomically, so any
/// consistent state of the table has *all* cells carrying one tag.
fn epoch_batch(side: u32, e: u64) -> Vec<BatchOp<2, u64>> {
    (0..side)
        .flat_map(|x| (0..side).map(move |y| BatchOp::Update(Point::new([x, y]), e)))
        .collect()
}

proptest! {
    /// Readers hammer random sub-rectangles (straddling shard boundaries)
    /// while a writer streams whole-table rewrite epochs. Every scan must
    /// observe exactly one epoch: all returned values identical, the
    /// returned point set exactly the rect's cells — the strengthened
    /// contract, checked at 1, 2, and 5 shards for every registry curve.
    #[test]
    fn every_scan_observes_exactly_one_epoch(seed in any::<u64>()) {
        const EPOCHS: u64 = 12;
        for name in CURVE_NAMES {
            for &shards in &[1usize, 2, 5] {
                let table = ShardedTable::build(
                    curve_2d(name, SIDE).unwrap(),
                    dense_records(SIDE),
                    DiskModel::ssd(),
                    shards,
                )
                .unwrap();
                let table = &table;
                let done = AtomicBool::new(false);
                let done = &done;
                std::thread::scope(|s| {
                    let readers: Vec<_> = (0..2u64)
                        .map(|t| {
                            s.spawn(move || {
                                let mut rng = StdRng::seed_from_u64(seed ^ t);
                                let mut scans = 0u64;
                                let mut last_seen = 0u64;
                                while !done.load(Ordering::Acquire) || scans < 4 {
                                    let x0 = rng.random_range(0..SIDE);
                                    let y0 = rng.random_range(0..SIDE);
                                    let w = rng.random_range(1..=SIDE - x0);
                                    let h = rng.random_range(1..=SIDE - y0);
                                    let q = RectQuery::new([x0, y0], [w, h]).unwrap();
                                    let result =
                                        table.query_rect(&q, &QueryOptions::default()).unwrap();
                                    // Exactly one epoch: one tag across
                                    // the whole scan, one record per cell.
                                    let tag = result.records.first().map_or(0, |r| r.value);
                                    assert!(
                                        result.records.iter().all(|r| r.value == tag),
                                        "scan straddled epochs: {:?}",
                                        result
                                            .records
                                            .iter()
                                            .map(|r| r.value)
                                            .collect::<std::collections::BTreeSet<_>>()
                                    );
                                    assert_eq!(
                                        result.records.len() as u64,
                                        u64::from(w) * u64::from(h),
                                        "scan lost or duplicated cells"
                                    );
                                    // Same-thread monotonicity: versions
                                    // install in order, so a later scan
                                    // never observes an older epoch.
                                    assert!(
                                        tag >= last_seen,
                                        "epoch went backwards: {tag} after {last_seen}"
                                    );
                                    last_seen = tag;
                                    scans += 1;
                                }
                            })
                        })
                        .collect();
                    for e in 1..=EPOCHS {
                        table.apply_batch(epoch_batch(SIDE, e)).unwrap();
                    }
                    done.store(true, Ordering::Release);
                    for r in readers {
                        r.join().expect("reader panicked");
                    }
                });
                prop_assert_eq!(table.version_epoch(), EPOCHS, "{} {} shards", name, shards);
            }
        }
    }

    /// Pinned snapshots are immutable: a snapshot taken at epoch `e`
    /// keeps answering epoch `e` byte-for-byte while later epochs apply
    /// and evict it from the retention window — the `Arc` pin is the GC
    /// root, for every registry curve.
    #[test]
    fn pinned_snapshot_survives_eviction(keep in 1u64..6) {
        for name in CURVE_NAMES {
            let mut table = ShardedTable::build(
                curve_2d(name, SIDE).unwrap(),
                dense_records(SIDE),
                DiskModel::ssd(),
                3,
            )
            .unwrap();
            table.set_retention(RetentionPolicy { epochs: 2, bytes: u64::MAX });
            for e in 1..=keep {
                table.apply_batch(epoch_batch(SIDE, e)).unwrap();
            }
            let pinned = table.snapshot();
            prop_assert_eq!(pinned.epoch(), keep);
            // Stream enough epochs to evict `keep` from the window.
            for e in keep + 1..=keep + 8 {
                table.apply_batch(epoch_batch(SIDE, e)).unwrap();
            }
            prop_assert!(!table.retained_epochs().contains(&keep));
            let q = RectQuery::new([0, 0], [SIDE, SIDE]).unwrap();
            let result = pinned.query_rect(&q).unwrap();
            prop_assert!(result.records.iter().all(|r| r.value == keep));
            prop_assert_eq!(result.records.len() as u64, u64::from(SIDE) * u64::from(SIDE));
        }
    }

    /// `as_of(e)` must equal the single-threaded replay of the WAL
    /// prefix through epoch `e` — i.e. the model state after the first
    /// `e` flushed batches — for every epoch of a random write history,
    /// on every registry curve. Retention is squeezed to 2 epochs so old
    /// epochs exercise the cold `snapshot + WAL prefix` path while
    /// recent ones answer from the in-memory window; a checkpoint then
    /// truncates history and `as_of` below the snapshot must refuse.
    #[test]
    fn as_of_equals_wal_prefix_replay(seed in any::<u64>()) {
        const EPOCHS: u64 = 8;
        let mut rng = StdRng::seed_from_u64(seed);
        for name in CURVE_NAMES {
            let dir = test_dir(&format!("mvcc_asof_{name}_{seed:x}"));
            let engine: Engine<DynCurve<2>, u64, 2> = Engine::open(
                &dir,
                curve_2d(name, SIDE).unwrap(),
                DiskModel::ssd(),
                3,
                EngineConfig {
                    epoch_ops: 1 << 20, // manual flushes only
                    retention: RetentionPolicy { epochs: 2, bytes: u64::MAX },
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            // A random upsert/delete history, one model snapshot per epoch.
            let mut model: BTreeMap<Point<2>, u64> = BTreeMap::new();
            let mut history: Vec<BTreeMap<Point<2>, u64>> = vec![model.clone()];
            for e in 1..=EPOCHS {
                for _ in 0..12 {
                    let p = Point::new([rng.random_range(0..SIDE), rng.random_range(0..SIDE)]);
                    if rng.random_bool(0.8) {
                        let v = e * 1000 + rng.random_range(0..100u64);
                        engine.execute(Op::Update(p, v)).unwrap();
                        model.insert(p, v);
                    } else {
                        engine.execute(Op::Delete(p)).unwrap();
                        model.remove(&p);
                    }
                }
                engine.flush().unwrap();
                prop_assert_eq!(engine.epoch(), e);
                history.push(model.clone());
            }
            let q = RectQuery::new([0, 0], [SIDE, SIDE]).unwrap();
            for (e, expected) in history.iter().enumerate() {
                let result = engine.query_as_of(e as u64, &q).unwrap();
                let got: BTreeMap<Point<2>, u64> = result
                    .records
                    .iter()
                    .map(|r| (r.point, r.value))
                    .collect();
                prop_assert_eq!(
                    &got, expected,
                    "{} as_of({}) != WAL prefix replay", name, e
                );
                // Executing through the op stream answers identically.
                let reply = engine
                    .execute(Op::QueryAsOf { epoch: e as u64, query: q })
                    .unwrap();
                let Reply::Records(records) = reply else { panic!("as_of reply shape") };
                prop_assert_eq!(records, result.records);
            }
            // Compaction draws the horizon: epochs at or above the
            // snapshot stay answerable, older ones are refused.
            let at = engine.checkpoint().unwrap();
            prop_assert_eq!(at, EPOCHS);
            prop_assert!(engine.query_as_of(EPOCHS, &q).is_ok());
            if EPOCHS > 0 {
                prop_assert!(engine.query_as_of(0, &q).is_err());
            }
            drop(engine);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// The one-epoch scan contract holds when the table is genuinely
    /// disk-resident: file-backed segment stores with a 4-page pool,
    /// readers racing whole-table rewrite epochs. Epoch installs are
    /// copy-on-write over the *overlay*; the immutable segment
    /// generation underneath must never let a scan mix two epochs.
    #[test]
    fn stored_scans_observe_exactly_one_epoch(seed in any::<u64>()) {
        const EPOCHS: u64 = 8;
        for &shards in &[1usize, 3] {
            let dir = test_dir(&format!("mvcc_stored_scan_{shards}_{seed:x}"));
            let table = ShardedTable::build_stored(
                curve_2d("onion", SIDE).unwrap(),
                dense_records(SIDE),
                DiskModel::ssd(),
                shards,
                &dir,
                StoreConfig { page_size: 256, pool_pages: 4 },
            )
            .unwrap();
            let table = &table;
            let done = AtomicBool::new(false);
            let done = &done;
            std::thread::scope(|s| {
                let readers: Vec<_> = (0..2u64)
                    .map(|t| {
                        s.spawn(move || {
                            let mut rng = StdRng::seed_from_u64(seed ^ t);
                            let mut scans = 0u64;
                            let mut last_seen = 0u64;
                            while !done.load(Ordering::Acquire) || scans < 4 {
                                let x0 = rng.random_range(0..SIDE);
                                let y0 = rng.random_range(0..SIDE);
                                let w = rng.random_range(1..=SIDE - x0);
                                let h = rng.random_range(1..=SIDE - y0);
                                let q = RectQuery::new([x0, y0], [w, h]).unwrap();
                                let result =
                                    table.query_rect(&q, &QueryOptions::default()).unwrap();
                                let tag = result.records.first().map_or(0, |r| r.value);
                                assert!(
                                    result.records.iter().all(|r| r.value == tag),
                                    "stored scan straddled epochs"
                                );
                                assert_eq!(
                                    result.records.len() as u64,
                                    u64::from(w) * u64::from(h),
                                    "stored scan lost or duplicated cells"
                                );
                                assert!(tag >= last_seen, "epoch went backwards");
                                last_seen = tag;
                                scans += 1;
                            }
                        })
                    })
                    .collect();
                for e in 1..=EPOCHS {
                    table.apply_batch(epoch_batch(SIDE, e)).unwrap();
                }
                done.store(true, Ordering::Release);
                for r in readers {
                    r.join().expect("reader panicked");
                }
            });
            prop_assert_eq!(table.version_epoch(), EPOCHS);
            // Folding the overlay into a fresh segment generation (the
            // checkpoint path) must preserve the final epoch exactly.
            table.compact_shards().unwrap();
            let q = RectQuery::new([0, 0], [SIDE, SIDE]).unwrap();
            let result = table.query_rect(&q, &QueryOptions::default()).unwrap();
            prop_assert!(result.records.iter().all(|r| r.value == EPOCHS));
            prop_assert_eq!(
                result.records.len() as u64,
                u64::from(SIDE) * u64::from(SIDE)
            );
            drop(result);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// `as_of(e)` on the disk-resident engine equals the WAL-prefix
    /// replay model — the retention window is squeezed to 2 epochs so
    /// cold epochs exercise `snapshot + WAL prefix` replay while the
    /// serving table reads file-backed segments through a 4-page pool.
    #[test]
    fn stored_as_of_equals_wal_prefix_replay(seed in any::<u64>()) {
        const EPOCHS: u64 = 8;
        let mut rng = StdRng::seed_from_u64(seed);
        let dir = test_dir(&format!("mvcc_stored_asof_{seed:x}"));
        let engine = Engine::open_stored(
            &dir,
            curve_2d("onion", SIDE).unwrap(),
            DiskModel::ssd(),
            3,
            StoreConfig { page_size: 256, pool_pages: 4 },
            EngineConfig {
                epoch_ops: 1 << 20, // manual flushes only
                retention: RetentionPolicy { epochs: 2, bytes: u64::MAX },
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let mut model: BTreeMap<Point<2>, u64> = BTreeMap::new();
        let mut history: Vec<BTreeMap<Point<2>, u64>> = vec![model.clone()];
        for e in 1..=EPOCHS {
            for _ in 0..12 {
                let p = Point::new([rng.random_range(0..SIDE), rng.random_range(0..SIDE)]);
                if rng.random_bool(0.8) {
                    let v = e * 1000 + rng.random_range(0..100u64);
                    engine.execute(Op::Update(p, v)).unwrap();
                    model.insert(p, v);
                } else {
                    engine.execute(Op::Delete(p)).unwrap();
                    model.remove(&p);
                }
            }
            engine.flush().unwrap();
            prop_assert_eq!(engine.epoch(), e);
            history.push(model.clone());
        }
        let q = RectQuery::new([0, 0], [SIDE, SIDE]).unwrap();
        for (e, expected) in history.iter().enumerate() {
            let result = engine.query_as_of(e as u64, &q).unwrap();
            let got: BTreeMap<Point<2>, u64> =
                result.records.iter().map(|r| (r.point, r.value)).collect();
            prop_assert_eq!(&got, expected, "stored as_of({}) != replay", e);
        }
        // A checkpoint compacts the segments and draws the horizon.
        prop_assert_eq!(engine.checkpoint().unwrap(), EPOCHS);
        prop_assert!(engine.query_as_of(EPOCHS, &q).is_ok());
        prop_assert!(engine.query_as_of(0, &q).is_err());
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
