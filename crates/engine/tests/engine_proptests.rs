//! Serving-layer correctness under concurrency, against single-threaded
//! models:
//!
//! * the engine is `Send + Sync` end to end (compile-time check);
//! * concurrent mixed op-streams from threads owning disjoint key bands
//!   are **per-key linearizable**: every `Get` observes exactly the value
//!   the thread's own single-threaded model predicts (reads-your-writes
//!   through the pending log, epoch application never loses or reorders a
//!   key's writes);
//! * at epoch boundaries the whole table equals the model table produced
//!   by applying the same ops single-threaded — for **every** registry
//!   curve, so curve choice changes costs, never answers.

use onion_core::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::{curve_2d, CURVE_NAMES};
use sfc_clustering::RectQuery;
use sfc_engine::{Engine, EngineConfig, Op, Reply};
use sfc_index::{DiskModel, PagedBackend, Record, ShardedTable};
use sfc_workloads::{mixed_op_stream, OpMix, StreamOp};
use std::collections::HashMap;

#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine<onion_core::Onion2D, u64, 2>>();
    assert_send_sync::<Engine<onion_core::Onion2D, u64, 2, PagedBackend<Record<2, u64>>>>();
    assert_send_sync::<Engine<sfc_baselines::DynCurve<2>, u64, 2>>();
}

/// Initial dense payload: one record per cell, value = x*1000 + y.
fn dense_records(side: u32) -> Vec<(Point<2>, u64)> {
    (0..side)
        .flat_map(|x| {
            (0..side).map(move |y| (Point::new([x, y]), u64::from(x) * 1000 + u64::from(y)))
        })
        .collect()
}

/// Rewrites a generated stream so every *point* op — writes AND gets —
/// lands in thread `t`'s band (`x % threads == t`); only rectangle
/// queries roam freely. Banding the gets too is what makes the per-key
/// assertions sound: every read target is thread-owned, so its value is
/// predictable from the thread's own model. Banding the writes makes the
/// concurrent final state deterministic: no two threads ever write the
/// same cell, so any interleaving produces the same epoch-boundary table.
fn band_stream(stream: Vec<StreamOp<2>>, t: u32, threads: u32, side: u32) -> Vec<Op<2, u64>> {
    assert_eq!(side % threads, 0, "bands must tile the universe");
    let to_band = |p: Point<2>| -> Point<2> {
        let x = p.0[0] - p.0[0] % threads + t;
        debug_assert!(x < side);
        Point::new([x, p.0[1]])
    };
    stream
        .into_iter()
        .map(|op| match op {
            StreamOp::Get(p) => Op::Get(to_band(p)),
            StreamOp::Query(q) => Op::Query(q),
            // Insert would create duplicates on occupied cells, making
            // per-key values ambiguous; the banded model uses the upsert
            // form so every cell holds at most one record.
            StreamOp::Insert(p, v) | StreamOp::Update(p, v) => Op::Update(to_band(p), v),
            StreamOp::Delete(p) => Op::Delete(to_band(p)),
        })
        .collect()
}

/// Runs one banded stream against the engine, asserting per-key
/// linearizability of every `Get` against the thread's own model, and
/// returns the model's final band state.
fn run_banded_stream(
    engine: &Engine<sfc_baselines::DynCurve<2>, u64, 2>,
    ops: &[Op<2, u64>],
    side: u32,
) -> HashMap<Point<2>, u64> {
    // Start from the initial dense payload (the engine was built on it).
    let mut model: HashMap<Point<2>, u64> = HashMap::new();
    for x in 0..side {
        for y in 0..side {
            model.insert(Point::new([x, y]), u64::from(x) * 1000 + u64::from(y));
        }
    }
    let mut touched: HashMap<Point<2>, Option<u64>> = HashMap::new();
    for op in ops {
        let reply = engine.execute(op.clone()).expect("in-bounds op");
        match op {
            Op::Get(p) => {
                // Only cells this thread owns are predictable: other
                // threads may be writing their own bands concurrently, but
                // never ours.
                if let Some(&mine) = touched.get(p) {
                    assert_eq!(
                        reply,
                        Reply::Value(mine),
                        "get after own writes at {p} must be linearizable"
                    );
                } else if let Reply::Value(v) = reply {
                    // Untouched by us: must still hold the initial value —
                    // no other thread ever writes our band.
                    assert_eq!(v, model.get(p).copied(), "untouched cell {p}");
                }
            }
            Op::Query(q) => {
                // Epoch-consistent: only sanity here (exact equality is
                // checked at the final boundary below).
                let Reply::Records(recs) = reply else {
                    panic!("query reply shape")
                };
                assert!(recs.len() as u64 <= q.volume());
            }
            Op::Update(p, v) => {
                touched.insert(*p, Some(*v));
            }
            Op::Delete(p) => {
                touched.insert(*p, None);
            }
            Op::Insert(..) | Op::QueryAsOf { .. } => {
                unreachable!("banded streams use upserts and live queries only")
            }
        }
    }
    // Final band state: initial values overridden by this thread's writes.
    for (p, v) in touched {
        match v {
            Some(v) => model.insert(p, v),
            None => model.remove(&p),
        };
    }
    model
}

proptest! {
    /// Four threads of mixed Zipf-skewed traffic over disjoint write
    /// bands, for every registry curve: per-key gets are linearizable
    /// while running, and the epoch-boundary table equals the
    /// single-threaded model exactly.
    #[test]
    fn concurrent_streams_match_model_for_every_registry_curve(seed in any::<u64>()) {
        let side = 16u32;
        let threads = 4u32;
        for name in CURVE_NAMES {
            let table = ShardedTable::build(
                curve_2d(name, side).unwrap(),
                dense_records(side),
                DiskModel::ssd(),
                4,
            )
            .unwrap();
            // Small epochs force many concurrent flushes mid-run.
            let engine = Engine::new(table, EngineConfig::with_epoch_ops(32));
            let streams: Vec<Vec<Op<2, u64>>> = (0..threads)
                .map(|t| {
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ (u64::from(t) << 32) ^ name.len() as u64,
                    );
                    let raw = mixed_op_stream::<2, _>(
                        side,
                        120,
                        &OpMix::balanced(),
                        0.8,
                        6,
                        &mut rng,
                    );
                    band_stream(raw, t, threads, side)
                })
                .collect();
            let engine = &engine;
            let models: Vec<HashMap<Point<2>, u64>> = std::thread::scope(|s| {
                let handles: Vec<_> = streams
                    .iter()
                    .map(|ops| s.spawn(move || run_banded_stream(engine, ops, side)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("stream thread panicked"))
                    .collect()
            });
            // Merge the per-thread band states into the expected table:
            // thread t's model is authoritative for x % threads == t, the
            // initial data for... nothing (bands tile the whole universe).
            let mut expected: Vec<(Point<2>, u64)> = Vec::new();
            for x in 0..side {
                let owner = (x % threads) as usize;
                for y in 0..side {
                    let p = Point::new([x, y]);
                    if let Some(&v) = models[owner].get(&p) {
                        expected.push((p, v));
                    }
                }
            }
            // Epoch boundary: flush, then the whole table must equal the
            // model (as a set — curve order differs per curve).
            engine.flush().unwrap();
            let q = RectQuery::new([0, 0], [side, side]).unwrap();
            let (result, _) = engine.query(&q).unwrap();
            let mut got: Vec<(Point<2>, u64)> =
                result.records.iter().map(|r| (r.point, r.value)).collect();
            got.sort();
            expected.sort();
            prop_assert_eq!(engine.table().len(), expected.len(), "{}", name);
            prop_assert_eq!(got, expected, "{} epoch-boundary state", name);
        }
    }

    /// Epoch batching is semantically invisible: the same single stream
    /// produces the same epoch-boundary state whether applied op-by-op
    /// (epoch size 1) or in one giant epoch — across paged and memory
    /// backends.
    #[test]
    fn epoch_size_never_changes_boundary_state(seed in any::<u64>(), epoch_ops in 1usize..64) {
        let side = 16u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = mixed_op_stream::<2, _>(side, 150, &OpMix::balanced(), 0.6, 5, &mut rng);
        let ops = band_stream(raw, 0, 1, side);
        let run = |epoch_ops: usize| {
            let engine = Engine::new(
                ShardedTable::build(
                    curve_2d("onion", side).unwrap(),
                    dense_records(side),
                    DiskModel::ssd(),
                    3,
                )
                .unwrap(),
                EngineConfig::with_epoch_ops(epoch_ops),
            );
            engine.run_stream(ops.iter().cloned()).unwrap();
            engine.flush().unwrap();
            let q = RectQuery::new([0, 0], [side, side]).unwrap();
            let (result, _) = engine.query(&q).unwrap();
            result
                .records
                .iter()
                .map(|r| (r.point, r.value))
                .collect::<Vec<_>>()
        };
        let tiny = run(1);
        let chosen = run(epoch_ops);
        let giant = run(usize::MAX);
        prop_assert_eq!(&tiny, &chosen);
        prop_assert_eq!(&tiny, &giant);
    }
}
