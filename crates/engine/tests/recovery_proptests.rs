//! Crash-consistency of the durable engine, pinned by property tests:
//!
//! * **Torn-tail recovery:** truncate the WAL at an *arbitrary byte
//!   offset* — clean frame boundaries, mid-frame, mid-header, even
//!   inside the file magic — reopen, and the recovered state equals
//!   exactly the prefix of fully committed epochs whose frames survived,
//!   for multiple registry curves (curve choice changes keys, never
//!   crash semantics);
//! * **Replay determinism across shard counts:** the same committed
//!   epochs recover to identical `query_rect` answers at 1, 2, and 5
//!   shards (regression pin: recovery re-partitions, it must never
//!   reorder);
//! * **Crash schedules:** a [`CrashSchedule`]-cut write stream driven
//!   through repeated open → serve → drop cycles recovers, after every
//!   crash, the auto-flushed epoch prefix the model predicts;
//! * **Checkpoint compaction:** snapshots absorb the log without
//!   changing recovered state, including after a crash landing between
//!   snapshot publication and log truncation.

use onion_core::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_baselines::{curve_2d, DynCurve, CURVE_NAMES};
use sfc_clustering::RectQuery;
use sfc_engine::{CommitPolicy, Engine, EngineConfig, Op, Reply, WAL_FILE};
use sfc_index::{Backend, BatchOp, DiskModel, FileBackend, Record, StoreConfig};
use sfc_workloads::CrashSchedule;
use std::collections::BTreeMap;
use std::path::PathBuf;

const SIDE: u32 = 16;

/// A fresh per-test directory under cargo's target tmpdir (inside the
/// workspace, wiped with `target/`).
fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_engine(dir: &PathBuf, curve_name: &str, shards: usize) -> Engine<DynCurve<2>, u64, 2> {
    Engine::open(
        dir,
        curve_2d(curve_name, SIDE).unwrap(),
        DiskModel::ssd(),
        shards,
        EngineConfig::with_epoch_ops(1 << 20), // manual flushes only
    )
    .unwrap()
}

/// Opens the same directory in disk-resident mode: file-backed segment
/// stores with 256-byte pages and a 4-page buffer pool, so the dataset
/// is far larger than the pool and every recovery genuinely re-reads
/// real pages.
fn open_stored_engine(
    dir: &PathBuf,
    curve_name: &str,
    shards: usize,
) -> Engine<DynCurve<2>, u64, 2, FileBackend<Record<2, u64>>> {
    Engine::open_stored(
        dir,
        curve_2d(curve_name, SIDE).unwrap(),
        DiskModel::ssd(),
        shards,
        StoreConfig {
            page_size: 256,
            pool_pages: 4,
        },
        EngineConfig::with_epoch_ops(1 << 20), // manual flushes only
    )
    .unwrap()
}

/// The single-threaded model of the table, with the engine's duplicate
/// semantics: `Insert` appends, `Update` rewrites the newest record (or
/// inserts), `Delete` removes the oldest, point gets return the newest.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
struct Model(BTreeMap<Point<2>, Vec<u64>>);

impl Model {
    fn apply(&mut self, op: &BatchOp<2, u64>) {
        match op {
            BatchOp::Insert(p, v) => self.0.entry(*p).or_default().push(*v),
            BatchOp::Update(p, v) => {
                let slot = self.0.entry(*p).or_default();
                match slot.last_mut() {
                    Some(newest) => *newest = *v,
                    None => slot.push(*v),
                }
            }
            BatchOp::Delete(p) => {
                if let Some(slot) = self.0.get_mut(p) {
                    if !slot.is_empty() {
                        slot.remove(0);
                    }
                    if slot.is_empty() {
                        self.0.remove(p);
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.0.values().map(Vec::len).sum()
    }
}

/// Asserts the engine's full-universe scan and a sample of point gets
/// equal the model — against any backend, so the disk-resident engine
/// runs through the identical oracle.
fn assert_state_equals_model<B>(engine: &Engine<DynCurve<2>, u64, 2, B>, model: &Model, ctx: &str)
where
    B: Backend<Record<2, u64>> + Send + Sync,
{
    assert_eq!(engine.table().len(), model.len(), "{ctx}: record count");
    let q = RectQuery::new([0, 0], [SIDE, SIDE]).unwrap();
    let (result, _) = engine.query(&q).unwrap();
    let mut got: BTreeMap<Point<2>, Vec<u64>> = BTreeMap::new();
    for rec in &result.records {
        got.entry(rec.point).or_default().push(rec.value);
    }
    // Duplicate order within a cell is insertion order for both sides.
    assert_eq!(got, model.0, "{ctx}: full-universe scan");
    for x in (0..SIDE).step_by(3) {
        let p = Point::new([x, (x * 7) % SIDE]);
        let expect = model.0.get(&p).and_then(|vs| vs.last()).copied();
        assert_eq!(
            engine.execute(Op::Get(p)).unwrap(),
            Reply::Value(expect),
            "{ctx}: point get at {p}"
        );
    }
}

/// Deterministic write-only op batch: a mix of inserts, upserts, and
/// deletes over Zipf-ish skewed cells.
fn write_ops(rng: &mut StdRng, count: usize) -> Vec<BatchOp<2, u64>> {
    (0..count)
        .map(|i| {
            let p = Point::new([
                (rng.random_range(0..SIDE as u64 * 3) % u64::from(SIDE)) as u32,
                rng.random_range(0..u64::from(SIDE)) as u32,
            ]);
            match rng.random_range(0..10u64) {
                0..=4 => BatchOp::Insert(p, i as u64),
                5..=7 => BatchOp::Update(p, 1_000_000 + i as u64),
                _ => BatchOp::Delete(p),
            }
        })
        .collect()
}

fn as_op(op: &BatchOp<2, u64>) -> Op<2, u64> {
    match op {
        BatchOp::Insert(p, v) => Op::Insert(*p, *v),
        BatchOp::Update(p, v) => Op::Update(*p, *v),
        BatchOp::Delete(p) => Op::Delete(*p),
    }
}

proptest! {
    /// THE crash-point property: commit a few epochs, truncate the WAL
    /// at an arbitrary byte offset (mid-frame and mid-header included),
    /// reopen, and the state equals exactly the prefix of epochs whose
    /// commit offset survived — for two registry curves.
    #[test]
    fn truncated_wal_recovers_exactly_the_committed_prefix(
        seed in any::<u64>(),
        cut_permille in 0u64..=1000,
    ) {
        for curve_name in ["onion", "z-order"] {
            let dir = test_dir(&format!(
                "truncate-{curve_name}-{seed:x}-{cut_permille}"
            ));
            let mut rng = StdRng::seed_from_u64(seed);
            let engine = open_engine(&dir, curve_name, 3);

            // Commit 6 epochs of 24 writes each, recording the WAL byte
            // offset each flush acknowledged and the model state at each
            // epoch boundary.
            let mut model = Model::default();
            let mut boundary_models = vec![model.clone()];
            let mut commit_offsets = vec![engine.wal_len().unwrap()];
            for _ in 0..6 {
                let batch = write_ops(&mut rng, 24);
                for op in &batch {
                    engine.execute(as_op(op)).unwrap();
                    model.apply(op);
                }
                prop_assert_eq!(engine.flush().unwrap(), 24);
                boundary_models.push(model.clone());
                commit_offsets.push(engine.wal_len().unwrap());
            }
            drop(engine); // crash (pending log is empty; epochs are on disk)

            // Truncate the log at an arbitrary byte offset.
            let wal_path = dir.join(WAL_FILE);
            let full = std::fs::metadata(&wal_path).unwrap().len();
            let cut = full * cut_permille / 1000;
            let file = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
            file.set_len(cut).unwrap();
            drop(file);

            // Every fully committed frame at or before the cut survives;
            // the first torn one ends recovery.
            let expected_epochs = commit_offsets
                .iter()
                .skip(1)
                .take_while(|&&end| end <= cut)
                .count();
            let recovered = open_engine(&dir, curve_name, 3);
            prop_assert_eq!(
                recovered.epoch(),
                expected_epochs as u64,
                "cut {} of {} must recover exactly the committed prefix ({})",
                cut,
                full,
                curve_name
            );
            assert_state_equals_model(
                &recovered,
                &boundary_models[expected_epochs],
                &format!("{curve_name} cut={cut}"),
            );
            drop(recovered);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    /// Replay determinism across shard counts: the same committed epochs
    /// produce identical `query_rect` answers whether the WAL is
    /// recovered into 1, 2, or 5 shards. (Regression pin for the replay
    /// path: recovery re-partitions the key space, and must never let
    /// the layout reorder same-key writes or duplicate records.)
    #[test]
    fn replay_is_deterministic_across_shard_counts(seed in any::<u64>()) {
        let dir = test_dir(&format!("shard-determinism-{seed:x}"));
        let mut rng = StdRng::seed_from_u64(seed);
        let writer = open_engine(&dir, "onion", 3);
        let mut model = Model::default();
        for _ in 0..4 {
            let batch = write_ops(&mut rng, 32);
            for op in &batch {
                writer.execute(as_op(op)).unwrap();
                model.apply(op);
            }
            writer.flush().unwrap();
        }
        // Compact the middle into a snapshot, then commit more epochs on
        // top, so recovery exercises snapshot + suffix — not just replay.
        writer.checkpoint().unwrap();
        let batch = write_ops(&mut rng, 32);
        for op in &batch {
            writer.execute(as_op(op)).unwrap();
            model.apply(op);
        }
        writer.flush().unwrap();
        drop(writer);

        let queries = [
            RectQuery::new([0, 0], [SIDE, SIDE]).unwrap(),
            RectQuery::new([2, 3], [7, 5]).unwrap(),
            RectQuery::new([9, 0], [4, 12]).unwrap(),
        ];
        let mut per_shard_answers = Vec::new();
        for shards in [1usize, 2, 5] {
            let recovered = open_engine(&dir, "onion", shards);
            prop_assert_eq!(recovered.epoch(), 5, "all epochs at {} shards", shards);
            assert_state_equals_model(&recovered, &model, &format!("{shards} shards"));
            let answers: Vec<Vec<(Point<2>, u64)>> = queries
                .iter()
                .map(|q| {
                    let (res, _) = recovered.query(q).unwrap();
                    res.records.iter().map(|r| (r.point, r.value)).collect()
                })
                .collect();
            per_shard_answers.push(answers);
            drop(recovered);
        }
        // Identical — including in-cell duplicate order, because results
        // come back in curve-key order whatever the shard layout.
        prop_assert_eq!(&per_shard_answers[0], &per_shard_answers[1]);
        prop_assert_eq!(&per_shard_answers[0], &per_shard_answers[2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Crash schedules over auto-flushing engines: cut one write stream
    /// at sampled crash points, serve each run into a reopened engine,
    /// drop it cold, and check every recovery lands on the epoch
    /// boundary the auto-flush cadence predicts.
    #[test]
    fn crash_schedule_recovers_auto_flushed_prefixes(seed in any::<u64>()) {
        let dir = test_dir(&format!("schedule-{seed:x}"));
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = write_ops(&mut rng, 120);
        let schedule = CrashSchedule::sample(stream.len(), 3, &mut rng);
        let epoch_ops = 8usize;

        let mut durable_model = Model::default(); // what is on disk
        let mut total_epochs = 0u64;
        for run in schedule.segments(&stream) {
            let engine = Engine::open(
                &dir,
                curve_2d("onion", SIDE).unwrap(),
                DiskModel::ssd(),
                2,
                EngineConfig::with_epoch_ops(epoch_ops),
            )
            .unwrap();
            prop_assert_eq!(engine.epoch(), total_epochs, "epoch numbering continues");
            assert_state_equals_model(&engine, &durable_model, "post-recovery");
            for op in run {
                engine.execute(as_op(op)).unwrap();
            }
            // Auto-flush commits every full `epoch_ops` batch; the tail
            // beyond the last threshold dies with the crash (drop).
            let committed = run.len() - run.len() % epoch_ops;
            for op in &run[..committed] {
                durable_model.apply(op);
            }
            total_epochs += (run.len() / epoch_ops) as u64;
            prop_assert_eq!(engine.epoch(), total_epochs, "auto-flush cadence");
            drop(engine); // crash: pending tail ops are gone
        }
        let survivor = open_engine(&dir, "onion", 2);
        assert_state_equals_model(&survivor, &durable_model, "final recovery");
        drop(survivor);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Byte offsets where each WAL frame ends (header first): parsing the
/// `[len][crc]` headers without decoding payloads, so tests can cut the
/// log exactly *between* frames that shared one pipelined fsync.
fn frame_ends(wal_bytes: &[u8]) -> Vec<u64> {
    let magic = sfc_index::WAL_MAGIC.len();
    let mut ends = vec![magic as u64];
    let mut at = magic;
    while at + 8 <= wal_bytes.len() {
        let len = u32::from_le_bytes(wal_bytes[at..at + 4].try_into().unwrap()) as usize;
        if at + 8 + len > wal_bytes.len() {
            break;
        }
        at += 8 + len;
        ends.push(at as u64);
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Group commit + the pipelined WAL are invisible on disk and in
    /// memory: the same flush cadence run through the pipelined default
    /// policy and through the synchronous PR-4 reference produces a
    /// **byte-identical** log and identical epoch-boundary state — for
    /// every registry curve and 1/2/5 shards (the log is written before
    /// sorting, so shard layout must not leak into it either).
    #[test]
    fn pipelined_group_commit_log_is_byte_identical_to_serial(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let epochs: Vec<Vec<BatchOp<2, u64>>> =
            (0..3).map(|_| write_ops(&mut rng, 16)).collect();
        for curve_name in CURVE_NAMES {
            for shards in [1usize, 2, 5] {
                let mut logs: Vec<Vec<u8>> = Vec::new();
                let mut answers = Vec::new();
                for (tag, policy) in [
                    ("pipe", CommitPolicy::default()),
                    ("sync", CommitPolicy::synchronous()),
                ] {
                    let dir = test_dir(&format!(
                        "groupcommit-{curve_name}-{shards}-{tag}-{seed:x}"
                    ));
                    let engine = Engine::open(
                        &dir,
                        curve_2d(curve_name, SIDE).unwrap(),
                        DiskModel::ssd(),
                        shards,
                        EngineConfig {
                            epoch_ops: 1 << 20,
                            commit: policy,
                            ..EngineConfig::default()
                        },
                    )
                    .unwrap();
                    for batch in &epochs {
                        for op in batch {
                            engine.execute(as_op(op)).unwrap();
                        }
                        engine.flush().unwrap();
                    }
                    prop_assert_eq!(engine.epoch(), 3);
                    prop_assert_eq!(
                        engine.durable_epoch(),
                        3,
                        "an explicit flush acknowledges only synced epochs"
                    );
                    let q = RectQuery::new([0, 0], [SIDE, SIDE]).unwrap();
                    let (res, _) = engine.query(&q).unwrap();
                    answers.push(
                        res.records
                            .iter()
                            .map(|r| (r.point, r.value))
                            .collect::<Vec<_>>(),
                    );
                    drop(engine);
                    logs.push(std::fs::read(dir.join(WAL_FILE)).unwrap());
                    std::fs::remove_dir_all(&dir).unwrap();
                }
                prop_assert_eq!(
                    &logs[0],
                    &logs[1],
                    "{} at {} shards: pipelined and synchronous logs differ",
                    curve_name,
                    shards
                );
                prop_assert_eq!(&answers[0], &answers[1], "{} state", curve_name);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Cuts landing *between* coalesced frames: auto-flushed epochs ride
    /// the sync pipeline several frames per fsync, yet each keeps its own
    /// frame — so truncating the log at any frame boundary (and at
    /// arbitrary points inside the last frame) recovers exactly that
    /// epoch prefix, never a fused group.
    #[test]
    fn cuts_between_coalesced_frames_recover_epoch_prefixes(seed in any::<u64>()) {
        let dir = test_dir(&format!("coalesced-frames-{seed:x}"));
        let mut rng = StdRng::seed_from_u64(seed);
        let epoch_ops = 8usize;
        let stream = write_ops(&mut rng, 64);
        let engine = Engine::open(
            &dir,
            curve_2d("onion", SIDE).unwrap(),
            DiskModel::ssd(),
            3,
            EngineConfig::with_epoch_ops(epoch_ops), // default (pipelined) policy
        )
        .unwrap();
        let mut model = Model::default();
        let mut boundary_models = vec![model.clone()];
        for (i, op) in stream.iter().enumerate() {
            engine.execute(as_op(op)).unwrap();
            model.apply(op);
            if (i + 1) % epoch_ops == 0 {
                boundary_models.push(model.clone());
            }
        }
        prop_assert_eq!(engine.epoch(), 8, "auto-flush cadence");
        drop(engine); // drains the pipeline: every frame is on disk

        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        let ends = frame_ends(&bytes);
        prop_assert_eq!(ends.len(), 9, "one frame per epoch, pipelined or not");
        // Cut at aligned (frame-boundary) epochs, largest first so the
        // file only ever shrinks.
        let schedule = sfc_workloads::CrashSchedule::sample_aligned(8, 1, 4, &mut rng);
        for &epoch_cut in schedule.points().iter().rev() {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .unwrap();
            file.set_len(ends[epoch_cut]).unwrap();
            drop(file);
            let recovered = open_engine(&dir, "onion", 3);
            prop_assert_eq!(
                recovered.epoch(),
                epoch_cut as u64,
                "cut between frames at epoch {}",
                epoch_cut
            );
            assert_state_equals_model(
                &recovered,
                &boundary_models[epoch_cut],
                &format!("frame-boundary cut at epoch {epoch_cut}"),
            );
            drop(recovered);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// [`CrashSchedule::sample_aligned`] cuts a stream exactly between
    /// epoch batches: every crash then loses *nothing* — the recovered
    /// engine holds the full auto-flushed prefix, and epoch numbering
    /// continues seamlessly across the crashes (the aligned twin of
    /// `crash_schedule_recovers_auto_flushed_prefixes`, whose arbitrary
    /// cuts lose the sub-epoch tail).
    #[test]
    fn aligned_crash_schedule_loses_no_epochs(seed in any::<u64>()) {
        let dir = test_dir(&format!("aligned-schedule-{seed:x}"));
        let mut rng = StdRng::seed_from_u64(seed);
        let epoch_ops = 8usize;
        let stream = write_ops(&mut rng, 96);
        let schedule = CrashSchedule::sample_aligned(stream.len(), epoch_ops, 3, &mut rng);
        let mut model = Model::default();
        let mut total_epochs = 0u64;
        for run in schedule.segments(&stream) {
            let engine = Engine::open(
                &dir,
                curve_2d("onion", SIDE).unwrap(),
                DiskModel::ssd(),
                2,
                EngineConfig::with_epoch_ops(epoch_ops),
            )
            .unwrap();
            prop_assert_eq!(engine.epoch(), total_epochs, "epoch numbering continues");
            assert_state_equals_model(&engine, &model, "aligned post-recovery");
            for op in run {
                engine.execute(as_op(op)).unwrap();
            }
            // Runs start and end on epoch boundaries, so the only
            // unflushed tail is the final run's remainder.
            let committed = run.len() - run.len() % epoch_ops;
            for op in &run[..committed] {
                model.apply(op);
            }
            total_epochs += (run.len() / epoch_ops) as u64;
            drop(engine); // crash between epoch batches
        }
        let survivor = open_engine(&dir, "onion", 2);
        assert_state_equals_model(&survivor, &model, "aligned final recovery");
        drop(survivor);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn checkpoint_compacts_without_changing_recovered_state() {
    let dir = test_dir("checkpoint-compaction");
    let mut rng = StdRng::seed_from_u64(11);
    let engine = open_engine(&dir, "onion", 3);
    let mut model = Model::default();
    for _ in 0..3 {
        let batch = write_ops(&mut rng, 40);
        for op in &batch {
            engine.execute(as_op(op)).unwrap();
            model.apply(op);
        }
        engine.flush().unwrap();
    }
    let wal_before = engine.wal_len().unwrap();
    assert_eq!(
        engine.checkpoint().unwrap(),
        3,
        "checkpoint reports its epoch"
    );
    let wal_after = engine.wal_len().unwrap();
    assert!(
        wal_after < wal_before,
        "compaction must shrink the log ({wal_before} -> {wal_after})"
    );
    drop(engine);

    let recovered = open_engine(&dir, "onion", 3);
    assert_eq!(recovered.epoch(), 3, "snapshot carries the epoch");
    assert_state_equals_model(&recovered, &model, "post-checkpoint recovery");

    // Epochs committed after a checkpoint stack on the snapshot.
    let batch = write_ops(&mut rng, 16);
    for op in &batch {
        recovered.execute(as_op(op)).unwrap();
        model.apply(op);
    }
    recovered.flush().unwrap();
    drop(recovered);
    let again = open_engine(&dir, "onion", 3);
    assert_eq!(again.epoch(), 4);
    assert_state_equals_model(&again, &model, "snapshot + WAL suffix");
    drop(again);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_wal_frames_below_the_snapshot_epoch_are_skipped() {
    // A crash between snapshot publication and WAL truncation leaves
    // frames the snapshot already absorbed. Simulate it: checkpoint,
    // then restore the pre-checkpoint WAL bytes, and reopen.
    let dir = test_dir("stale-frames");
    let mut rng = StdRng::seed_from_u64(23);
    let engine = open_engine(&dir, "onion", 2);
    let mut model = Model::default();
    for _ in 0..2 {
        let batch = write_ops(&mut rng, 30);
        for op in &batch {
            engine.execute(as_op(op)).unwrap();
            model.apply(op);
        }
        engine.flush().unwrap();
    }
    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
    engine.checkpoint().unwrap();
    drop(engine);
    // Undo the truncation: the absorbed frames are back in the log.
    std::fs::write(dir.join(WAL_FILE), &wal_bytes).unwrap();

    let recovered = open_engine(&dir, "onion", 2);
    assert_eq!(recovered.epoch(), 2, "stale frames must not re-apply");
    assert_state_equals_model(&recovered, &model, "stale-frame recovery");
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipping_a_committed_byte_truncates_from_the_damage_on() {
    // Bit rot inside an earlier frame: the checksum catches it and
    // recovery keeps only the epochs before the damage — prefix
    // semantics, not a crash or a silently wrong table.
    let dir = test_dir("bitflip");
    let mut rng = StdRng::seed_from_u64(5);
    let engine = open_engine(&dir, "onion", 2);
    let mut model_epoch1 = Model::default();
    let batch = write_ops(&mut rng, 20);
    for op in &batch {
        engine.execute(as_op(op)).unwrap();
        model_epoch1.apply(op);
    }
    engine.flush().unwrap();
    let first_epoch_end = engine.wal_len().unwrap();
    for op in write_ops(&mut rng, 20) {
        engine.execute(as_op(&op)).unwrap();
    }
    engine.flush().unwrap();
    drop(engine);

    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let victim = first_epoch_end as usize + 12; // inside the second frame's payload
    bytes[victim] ^= 0x40;
    std::fs::write(&wal_path, &bytes).unwrap();

    let recovered = open_engine(&dir, "onion", 2);
    assert_eq!(recovered.epoch(), 1, "damage in epoch 2 keeps epoch 1");
    assert_state_equals_model(&recovered, &model_epoch1, "bit-flip recovery");
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// The disk-resident engine honors the same prefix contract as the
    /// in-memory one: commit epochs onto file-backed segment stores
    /// (dataset ≫ the 4-page buffer pool), truncate the WAL at an
    /// arbitrary byte, and every reopen — stored at the original and a
    /// different shard count, and in-memory from the same directory —
    /// recovers exactly the committed-frame prefix.
    #[test]
    fn stored_engine_recovers_the_committed_prefix(
        seed in any::<u64>(),
        cut_permille in 0u64..=1000,
    ) {
        let dir = test_dir(&format!("stored-recovery-{seed:x}-{cut_permille}"));
        let mut rng = StdRng::seed_from_u64(seed);
        let engine = open_stored_engine(&dir, "onion", 3);
        let mut epochs: Vec<Vec<BatchOp<2, u64>>> = Vec::new();
        let mut ends = Vec::new();
        for e in 0..4 {
            let batch = write_ops(&mut rng, 24);
            for op in &batch {
                engine.execute(as_op(op)).unwrap();
            }
            prop_assert_eq!(engine.flush().unwrap(), 24);
            epochs.push(batch);
            ends.push(engine.wal_len().unwrap());
            if e == 1 {
                // A mid-run checkpoint folds epochs 1-2 into segments +
                // snapshot; later cuts land in the WAL *suffix*.
                engine.checkpoint().unwrap();
                ends.clear(); // cuts below the snapshot cannot lose state
            }
        }
        drop(engine);

        // Cut the WAL suffix at an arbitrary byte. Frames past the cut
        // are lost; the snapshot floor (epoch 2) always survives.
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let cut = bytes.len() as u64 * cut_permille / 1000;
        bytes.truncate(cut as usize);
        std::fs::write(&wal_path, &bytes).unwrap();
        let survivors = 2 + ends.iter().filter(|&&e| e <= cut).count() as u64;
        let mut model = Model::default();
        for batch in &epochs[..survivors as usize] {
            for op in batch {
                model.apply(op);
            }
        }

        let recovered = open_stored_engine(&dir, "onion", 3);
        prop_assert_eq!(recovered.epoch(), survivors);
        assert_state_equals_model(&recovered, &model, "stored reopen, same shards");
        drop(recovered);
        let resharded = open_stored_engine(&dir, "onion", 2);
        prop_assert_eq!(resharded.epoch(), survivors);
        assert_state_equals_model(&resharded, &model, "stored reopen, resharded");
        drop(resharded);
        // The directory is backend-agnostic: an in-memory reopen of the
        // same WAL + snapshot sees the identical state.
        let in_memory = open_engine(&dir, "onion", 3);
        prop_assert_eq!(in_memory.epoch(), survivors);
        assert_state_equals_model(&in_memory, &model, "in-memory reopen of stored dir");
        drop(in_memory);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
