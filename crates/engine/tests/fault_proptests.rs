//! Media-failure behavior of the disk-resident engine, driven by the
//! [`sfc_workloads::FaultInjector`] layer:
//!
//! * a failed checkpoint (injected fsync failure or full-disk write
//!   during segment compaction) surfaces as an error, is **not**
//!   destructive — the engine keeps serving the exact pre-checkpoint
//!   state — and a retry succeeds once the fault clears;
//! * an injected short read fails the query that hits it and nothing
//!   else: the engine stays usable and the retry returns the right rows;
//! * under a whole schedule of write/sync faults, a clean reopen always
//!   recovers **exactly** the flush-acknowledged epochs — the WAL and
//!   snapshot, not the segment files, are the durability contract, so
//!   segment-level media failures never cost an acknowledged epoch.

use onion_core::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_baselines::{curve_2d, DynCurve};
use sfc_clustering::RectQuery;
use sfc_engine::{Engine, EngineConfig, Op, Reply};
use sfc_index::{Backend, BatchOp, DiskModel, FileBackend, FileStore, Record, StoreConfig};
use sfc_workloads::{faulty_file_factory, CrashSchedule, Fault, FaultInjector, FaultStore};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

const SIDE: u32 = 16;

/// A fresh per-test directory under cargo's target tmpdir (inside the
/// workspace, wiped with `target/`).
fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Tight pages and a 4-page pool: the dataset genuinely lives on disk.
fn tight_store() -> StoreConfig {
    StoreConfig {
        page_size: 256,
        pool_pages: 4,
    }
}

type FaultyEngine = Engine<DynCurve<2>, u64, 2, FileBackend<Record<2, u64>, FaultStore<FileStore>>>;

/// Opens a disk-resident engine whose every segment store routes through
/// `injector`'s schedule.
fn open_faulty(dir: &PathBuf, shards: usize, injector: &Arc<FaultInjector>) -> FaultyEngine {
    Engine::open_stored_with(
        dir,
        curve_2d("onion", SIDE).unwrap(),
        DiskModel::ssd(),
        shards,
        tight_store(),
        faulty_file_factory(Arc::clone(injector)),
        EngineConfig::with_epoch_ops(1 << 20), // manual flushes only
    )
    .unwrap()
}

/// Opens the same directory on plain (fault-free) file stores — the
/// clean-reopen side of every recovery assertion.
fn open_clean(
    dir: &PathBuf,
    shards: usize,
) -> Engine<DynCurve<2>, u64, 2, FileBackend<Record<2, u64>>> {
    Engine::open_stored(
        dir,
        curve_2d("onion", SIDE).unwrap(),
        DiskModel::ssd(),
        shards,
        tight_store(),
        EngineConfig::with_epoch_ops(1 << 20),
    )
    .unwrap()
}

/// The single-threaded model with the engine's duplicate semantics (see
/// `recovery_proptests.rs`).
#[derive(Clone, Default, PartialEq, Eq, Debug)]
struct Model(BTreeMap<Point<2>, Vec<u64>>);

impl Model {
    fn apply(&mut self, op: &BatchOp<2, u64>) {
        match op {
            BatchOp::Insert(p, v) => self.0.entry(*p).or_default().push(*v),
            BatchOp::Update(p, v) => {
                let slot = self.0.entry(*p).or_default();
                match slot.last_mut() {
                    Some(newest) => *newest = *v,
                    None => slot.push(*v),
                }
            }
            BatchOp::Delete(p) => {
                if let Some(slot) = self.0.get_mut(p) {
                    if !slot.is_empty() {
                        slot.remove(0);
                    }
                    if slot.is_empty() {
                        self.0.remove(p);
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.0.values().map(Vec::len).sum()
    }
}

/// Full-universe scan plus sampled point gets, against any backend.
fn assert_state_equals_model<B>(engine: &Engine<DynCurve<2>, u64, 2, B>, model: &Model, ctx: &str)
where
    B: Backend<Record<2, u64>> + Send + Sync,
{
    assert_eq!(engine.table().len(), model.len(), "{ctx}: record count");
    let q = RectQuery::new([0, 0], [SIDE, SIDE]).unwrap();
    let (result, _) = engine.query(&q).unwrap();
    let mut got: BTreeMap<Point<2>, Vec<u64>> = BTreeMap::new();
    for rec in &result.records {
        got.entry(rec.point).or_default().push(rec.value);
    }
    assert_eq!(got, model.0, "{ctx}: full-universe scan");
    for x in (0..SIDE).step_by(3) {
        let p = Point::new([x, (x * 7) % SIDE]);
        let expect = model.0.get(&p).and_then(|vs| vs.last()).copied();
        assert_eq!(
            engine.execute(Op::Get(p)).unwrap(),
            Reply::Value(expect),
            "{ctx}: point get at {p}"
        );
    }
}

/// Deterministic mixed write batch (inserts, upserts, deletes).
fn write_ops(rng: &mut StdRng, count: usize) -> Vec<BatchOp<2, u64>> {
    (0..count)
        .map(|i| {
            let p = Point::new([
                (rng.random_range(0..SIDE as u64 * 3) % u64::from(SIDE)) as u32,
                rng.random_range(0..u64::from(SIDE)) as u32,
            ]);
            match rng.random_range(0..10u64) {
                0..=4 => BatchOp::Insert(p, i as u64),
                5..=7 => BatchOp::Update(p, 1_000_000 + i as u64),
                _ => BatchOp::Delete(p),
            }
        })
        .collect()
}

fn as_op(op: &BatchOp<2, u64>) -> Op<2, u64> {
    match op {
        BatchOp::Insert(p, v) => Op::Insert(*p, *v),
        BatchOp::Update(p, v) => Op::Update(*p, *v),
        BatchOp::Delete(p) => Op::Delete(*p),
    }
}

/// A failed fsync during checkpoint compaction surfaces as an error,
/// destroys nothing, and clears on retry.
#[test]
fn fsync_failure_during_checkpoint_is_not_destructive() {
    let dir = test_dir("fault-fsync-checkpoint");
    let injector = FaultInjector::new();
    let engine = open_faulty(&dir, 3, &injector);
    let mut rng = StdRng::seed_from_u64(77);
    let mut model = Model::default();
    for _ in 0..3 {
        for op in &write_ops(&mut rng, 30) {
            engine.execute(as_op(op)).unwrap();
            model.apply(op);
        }
        engine.flush().unwrap();
    }
    // Strike the next sync — the one ending the compacted segment build.
    injector.schedule(injector.op_count(), Fault::SyncError);
    let err = engine
        .checkpoint()
        .expect_err("injected fsync must fail the checkpoint");
    assert!(err.to_string().contains("fsync"), "unexpected error: {err}");
    assert_eq!(injector.injected(), 1);
    // The engine keeps serving the exact pre-checkpoint state...
    assert_state_equals_model(&engine, &model, "after failed checkpoint");
    // ...and the retry succeeds with the fault consumed.
    assert_eq!(engine.checkpoint().unwrap(), 3);
    assert_state_equals_model(&engine, &model, "after retried checkpoint");
    drop(engine);
    let recovered = open_clean(&dir, 3);
    assert_eq!(recovered.epoch(), 3);
    assert_state_equals_model(&recovered, &model, "clean reopen");
}

/// A full-disk write during compaction behaves the same way: error out,
/// keep serving, recover everything on a clean reopen — including into a
/// different shard count.
#[test]
fn enospc_during_compaction_keeps_serving_and_recovers() {
    let dir = test_dir("fault-enospc-compaction");
    let injector = FaultInjector::new();
    let engine = open_faulty(&dir, 2, &injector);
    let mut rng = StdRng::seed_from_u64(13);
    let mut model = Model::default();
    for _ in 0..4 {
        for op in &write_ops(&mut rng, 25) {
            engine.execute(as_op(op)).unwrap();
            model.apply(op);
        }
        engine.flush().unwrap();
    }
    injector.schedule(injector.op_count(), Fault::WriteError);
    assert!(
        engine.checkpoint().is_err(),
        "injected ENOSPC must fail the checkpoint"
    );
    assert_state_equals_model(&engine, &model, "after failed compaction");
    drop(engine);
    // Acknowledged epochs survive — whatever the shard count at reopen.
    for shards in [2usize, 5] {
        let recovered = open_clean(&dir, shards);
        assert_eq!(recovered.epoch(), 4, "{shards} shards");
        assert_state_equals_model(&recovered, &model, &format!("reopen at {shards} shards"));
        drop(recovered);
    }
}

/// An injected short read fails exactly the query that hits it; the
/// engine stays usable and the retry answers correctly.
#[test]
fn short_read_fails_one_query_and_nothing_else() {
    let dir = test_dir("fault-short-read");
    let injector = FaultInjector::new();
    let engine = open_faulty(&dir, 2, &injector);
    let mut rng = StdRng::seed_from_u64(29);
    let mut model = Model::default();
    for op in &write_ops(&mut rng, 60) {
        engine.execute(as_op(op)).unwrap();
        model.apply(op);
    }
    engine.flush().unwrap();
    // Fold the overlay into segments so queries genuinely read the disk,
    // then drop the leaf caches' contents by... scanning is cached, so
    // checkpoint first (fresh generation, cold cache).
    engine.checkpoint().unwrap();
    injector.schedule(injector.op_count(), Fault::ShortRead);
    let q = RectQuery::new([0, 0], [SIDE, SIDE]).unwrap();
    let err = engine.query(&q).expect_err("the struck read must surface");
    assert!(
        err.to_string().contains("injected short read"),
        "unexpected error: {err}"
    );
    assert_eq!(injector.injected(), 1);
    // Same query again: clean pass, right answer.
    assert_state_equals_model(&engine, &model, "after the failed read");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The prefix property under scheduled media failures: arm a whole
    /// [`CrashSchedule`] of write faults (plus a sync fault) against the
    /// segment stores, run epochs with checkpoints sprinkled between
    /// them — some fail, by design — and a clean reopen recovers
    /// **exactly** the flush-acknowledged epochs, at the original and at
    /// a different shard count.
    #[test]
    fn scheduled_faults_never_cost_an_acknowledged_epoch(seed in any::<u64>()) {
        let dir = test_dir(&format!("fault-schedule-{seed:x}"));
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = CrashSchedule::sample(400, 3, &mut rng);
        let injector = FaultInjector::new();
        let engine = open_faulty(&dir, 3, &injector);
        // Arm the schedule only now: its offsets are relative to the
        // first post-open store op, so the initial (empty) segment
        // builds are never struck and open itself always succeeds.
        let base = injector.op_count();
        for &p in schedule.points() {
            injector.schedule(base + p as u64, Fault::WriteError);
        }
        injector.schedule(base + rng.random_range(0..300u64), Fault::SyncError);
        let mut model = Model::default();
        let mut flushed = 0u64;
        let mut checkpoint_failures = 0u32;
        for _ in 0..5 {
            for op in &write_ops(&mut rng, 24) {
                engine.execute(as_op(op)).unwrap();
                model.apply(op);
            }
            // The WAL is not fault-wrapped: acknowledgment is unconditional.
            prop_assert_eq!(engine.flush().unwrap(), 24);
            flushed += 1;
            if rng.random_bool(0.5) {
                // Compaction may hit an armed fault; serving state must
                // not change either way.
                if engine.checkpoint().is_err() {
                    checkpoint_failures += 1;
                }
            }
        }
        // Whatever fired, the live engine serves every acknowledged epoch.
        assert_state_equals_model(&engine, &model, "live engine under faults");
        prop_assert_eq!(engine.epoch(), flushed);
        drop(engine);
        for shards in [3usize, 2] {
            let recovered = open_clean(&dir, shards);
            prop_assert_eq!(recovered.epoch(), flushed, "epochs at {} shards", shards);
            assert_state_equals_model(
                &recovered,
                &model,
                &format!("clean reopen at {shards} shards (after {checkpoint_failures} failed checkpoints)"),
            );
            drop(recovered);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
