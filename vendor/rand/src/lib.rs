//! Vendored, dependency-free stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no registry access, so this shim provides
//! exactly the surface the workspace uses: [`Rng::random_range`],
//! [`Rng::random_bool`], [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! via SplitMix64 — deterministic across platforms, which is all the
//! experiment harness requires. Swap the path dependency for the real crate
//! when a registry is available; no call sites need to change.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`Range` or `RangeInclusive`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, the same construction the real crate uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform range sampling, mirroring `rand::distr`.
pub mod distr {
    use super::RngCore;

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Unbiased sampling of `0..n` by rejection (Lemire-style widening).
    #[inline]
    fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0, "empty sample range");
        if n.is_power_of_two() {
            return rng.next_u64() & (n - 1);
        }
        // Rejection zone keeps the multiply-shift map unbiased.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = rng.next_u64();
            let (hi, lo) = {
                let wide = u128::from(v) * u128::from(n);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo <= zone {
                return hi;
            }
        }
    }

    macro_rules! impl_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(below(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain: every word is a valid sample.
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(below(rng, span) as $t)
                }
            }
        )*};
    }
    impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12), but
    /// deterministic and statistically solid, which is what the experiment
    /// binaries need from a seeded RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 key expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5usize..=5);
            assert_eq!(w, 5);
            let x = rng.random_range(-4i64..=4);
            assert!((-4..=4).contains(&x));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
