//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! benchmarking surface the workspace uses — [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function(BenchmarkId, |b| b.iter(..))`, `sample_size`, `finish` —
//! with a simple calibrated-loop timer instead of criterion's full
//! statistical machinery.
//!
//! Each benchmark is auto-calibrated to roughly [`target_sample_ms`] per
//! sample, run `sample_size` times, and reported as `min / median / max`
//! ns per iteration. Set `CRITERION_JSON_OUT=<path>` to additionally dump
//! every result of the process as a JSON array (used by the repo's
//! `BENCH_hotpath.json` export).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box` like the real crate.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Milliseconds each timed sample aims for (env `CRITERION_SAMPLE_MS`,
/// default 20). Lower it for quick smoke runs.
pub fn target_sample_ms() -> u64 {
    std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark path, `group/id`.
    pub name: String,
    /// Nanoseconds per iteration: minimum over samples.
    pub ns_min: f64,
    /// Nanoseconds per iteration: median over samples.
    pub ns_median: f64,
    /// Nanoseconds per iteration: maximum over samples.
    pub ns_max: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// All results recorded by this process so far.
pub fn take_results() -> Vec<BenchResult> {
    RESULTS.lock().expect("results poisoned").clone()
}

fn record(result: BenchResult) {
    RESULTS.lock().expect("results poisoned").push(result);
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    last: Option<BenchResult>,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the per-sample iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the iteration count until one sample takes at
        // least the target duration.
        let target = Duration::from_millis(target_sample_ms());
        let mut iters: u64 = 1;
        let per_iter_est = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 40 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            // Jump close to the target in one step, with a safety factor.
            let grow = (target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).min(1e4);
            iters = (iters as f64 * grow.max(2.0)).ceil() as u64;
        };
        let _ = per_iter_est;
        // Timed samples.
        let mut ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        ns.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
        self.last = Some(BenchResult {
            name: String::new(),
            ns_min: ns[0],
            ns_median: ns[ns.len() / 2],
            ns_max: ns[ns.len() - 1],
            iters_per_sample: iters,
            samples: ns.len(),
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            last: None,
        };
        f(&mut bencher);
        let mut result = bencher
            .last
            .expect("benchmark closure must call Bencher::iter");
        result.name = format!("{}/{}", self.name, id.id);
        println!(
            "{:<56} time: [{} {} {}]",
            result.name,
            fmt_ns(result.ns_min),
            fmt_ns(result.ns_median),
            fmt_ns(result.ns_max),
        );
        record(result);
        self
    }

    /// Ends the group (spacing line, matching criterion's report shape).
    pub fn finish(self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration. The shim accepts and ignores cargo's
    /// bench harness flags (`--bench`, filters), so `cargo bench` works.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark (implicit group named after the id).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = BenchmarkGroup {
            name: id.id.clone(),
            sample_size: 10,
            _criterion: self,
        };
        group.bench_function(BenchmarkId::from_parameter("run"), f);
        self
    }

    /// Writes collected results as JSON when `CRITERION_JSON_OUT` is set.
    pub fn final_summary(&mut self) {
        let Ok(path) = std::env::var("CRITERION_JSON_OUT") else {
            return;
        };
        let results = take_results();
        let mut out = String::from("[\n");
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"ns_min\": {:.3}, \"ns_median\": {:.3}, \"ns_max\": {:.3}, \"iters_per_sample\": {}, \"samples\": {}}}{}\n",
                r.name.replace('"', "'"),
                r.ns_min,
                r.ns_median,
                r.ns_max,
                r.iters_per_sample,
                r.samples,
                if i + 1 < results.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion shim: cannot write {path}: {e}");
        } else {
            println!("criterion shim: wrote {path}");
        }
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, running every group then the final summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_reports() {
        std::env::remove_var("CRITERION_JSON_OUT");
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.bench_function(BenchmarkId::from_parameter("add"), |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
        group.finish();
        let results = take_results();
        let r = results.iter().find(|r| r.name == "shim_test/add").unwrap();
        assert!(r.ns_median > 0.0);
        assert!(r.ns_min <= r.ns_median && r.ns_median <= r.ns_max);
        assert_eq!(r.samples, 3);
    }
}
