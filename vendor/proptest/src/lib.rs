//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! subset of proptest the workspace's property tests use: the [`proptest!`]
//! macro over `arg in strategy` bindings, integer-range and [`any`]
//! strategies (including tuples), and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Failing cases report the test
//! name, case number, and generated inputs. There is no shrinking — a
//! failure prints the raw counterexample instead.
//!
//! Cases per test default to 256; override with `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use std::fmt::Debug;

/// Deterministic test-case RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream; each test derives its seed from its name so runs
    /// are reproducible without a persistence file.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; the tiny modulo bias is irrelevant for test-case
        // generation (and vanishes for power-of-two spans).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A source of generated values.
///
/// Unlike real proptest there is no shrinking tree; a strategy is just a
/// sampler.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i32, i64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy wrapper returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `proptest::prelude::any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Outcome of one generated case: `Err` carries the assertion message.
pub type CaseResult = Result<(), String>;

/// Number of cases to run per property (env `PROPTEST_CASES`, default 256).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases per property; `PROPTEST_CASES` still overrides.
    pub cases: u64,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u64) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: cases() }
    }
}

/// Drives one property under an explicit config.
pub fn run_cases_with<F: FnMut(&mut TestRng) -> CaseResult>(
    config: ProptestConfig,
    name: &str,
    mut case: F,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    // FNV-1a over the test name gives a stable per-test seed.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for i in 0..cases {
        let mut rng = TestRng::new(seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        if let Err(msg) = case(&mut rng) {
            panic!("property '{name}' failed at case {i}/{cases}: {msg}");
        }
    }
}

/// Drives one property: draws `cases()` inputs and panics with the test
/// name, case number, and message on the first failure.
pub fn run_cases<F: FnMut(&mut TestRng) -> CaseResult>(name: &str, case: F) {
    run_cases_with(ProptestConfig::default(), name, case);
}

/// Strategy combinators namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Fixed-size array strategies.
    pub mod array {
        use crate::{Strategy, TestRng};

        /// Array strategy applying one element strategy per slot.
        #[derive(Clone, Debug)]
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N>
        where
            S::Value: Copy + Default,
        {
            type Value = [S::Value; N];
            fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
                let mut out = [S::Value::default(); N];
                for slot in &mut out {
                    *slot = self.element.sample(rng);
                }
                out
            }
        }

        /// `[S::Value; 2]` from one element strategy.
        pub fn uniform2<S: Strategy + Clone>(element: S) -> UniformArray<S, 2> {
            UniformArray { element }
        }

        /// `[S::Value; 3]` from one element strategy.
        pub fn uniform3<S: Strategy + Clone>(element: S) -> UniformArray<S, 3> {
            UniformArray { element }
        }

        /// `[S::Value; 4]` from one element strategy.
        pub fn uniform4<S: Strategy + Clone>(element: S) -> UniformArray<S, 4> {
            UniformArray { element }
        }
    }

    /// Sampling from explicit value collections.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Strategy drawing uniformly from a fixed list. See [`select`].
        #[derive(Clone, Debug)]
        pub struct Select<T> {
            values: Vec<T>,
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.values[rng.below(self.values.len() as u64) as usize].clone()
            }
        }

        /// Uniform choice among the given values (must be non-empty).
        pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select requires at least one value");
            Select { values }
        }
    }
}

/// The macros and strategies property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_cases`] over the bound strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases_with($config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    let __proptest_inputs =
                        format!(concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+);
                    let __proptest_result: $crate::CaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    __proptest_result.map_err(|e| format!("{e} [inputs: {__proptest_inputs}]"))
                });
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    let __proptest_inputs =
                        format!(concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+);
                    let __proptest_result: $crate::CaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    __proptest_result.map_err(|e| format!("{e} [inputs: {__proptest_inputs}]"))
                });
            }
        )+
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(
                format!("assertion failed: `{:?} == {:?}`", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(
                format!("assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)),
            );
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err(
                format!("assertion failed: `{:?} != {:?}`", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err(
                format!("assertion failed: `{:?} != {:?}`: {}", l, r, format!($($fmt)+)),
            );
        }
    }};
}

/// `prop_assume!(cond)` — discards the case when the precondition fails.
/// The shim counts a discarded case as passed (no global rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro wires strategies, assume, and assertions together.
        #[test]
        fn macro_smoke(a in 1u32..=100, b in any::<u64>(), pair in any::<(u32, u32)>()) {
            prop_assume!(a != 37);
            prop_assert!((1..=100).contains(&a));
            prop_assert_eq!(b.wrapping_add(0), b);
            prop_assert!(pair.0 as u64 <= u64::from(u32::MAX), "pair {:?}", pair);
        }
    }

    #[test]
    #[should_panic(expected = "property 'failing'")]
    fn failures_panic_with_context() {
        crate::run_cases("failing", |rng| {
            let v = rng.below(10);
            if v < 10 {
                Err(format!("v = {v}"))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(5u32..10), &mut rng);
            assert!((5..10).contains(&v));
            let w = crate::Strategy::sample(&(0u64..u64::MAX), &mut rng);
            assert!(w < u64::MAX);
        }
    }
}
